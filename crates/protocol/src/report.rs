//! Round and simulation reports: what the benchmark harness reads out.

use cycledger_net::metrics::{Counters, MetricsSink, Phase};
use cycledger_net::topology::NodeId;

/// Role groups used for Table II-style reporting.
#[derive(Clone, Debug, Default)]
pub struct RoleGroups {
    /// Common members of ordinary committees.
    pub common_members: Vec<NodeId>,
    /// Leaders and partial-set members.
    pub key_members: Vec<NodeId>,
    /// Referee committee members.
    pub referee_members: Vec<NodeId>,
}

/// What one recovery attempt did, as recorded in the round's recovery log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// The accused leader was evicted and a partial-set member installed.
    Evicted,
    /// The impeachment ran but did not evict (bad evidence or no majority).
    Rejected,
    /// No partial-set member was left to prosecute; the committee sat the
    /// round out.
    Skipped,
}

impl RecoveryOutcome {
    /// Stable one-byte encoding used by the canonical report bytes.
    fn code(self) -> u8 {
        match self {
            RecoveryOutcome::Evicted => 0,
            RecoveryOutcome::Rejected => 1,
            RecoveryOutcome::Skipped => 2,
        }
    }
}

/// One entry of the round's recovery log: every impeachment the engine
/// attempted, with the ground truth needed by external invariant checkers
/// (the scenario subsystem's "no honest node punished" claim is checked
/// against `accused_was_honest` captured *at accusation time*, so later
/// behaviour flips between rounds cannot blur the record).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Committee the recovery ran in.
    pub committee: usize,
    /// The accused leader.
    pub accused: NodeId,
    /// Whether the accused was honest (registry ground truth) when accused.
    pub accused_was_honest: bool,
    /// The prosecuting partial-set member (`None` when the recovery was
    /// skipped for lack of one).
    pub prosecutor: Option<NodeId>,
    /// Size of the committee at impeachment time (refinement denominator).
    pub committee_size: usize,
    /// Impeachment approvals the prosecutor counted (0 for skipped attempts).
    /// Together with `committee_size` this lets the refinement checker assert
    /// `Evicted ⇒ approvals ≥ ⌊C/2⌋+1`. Not part of the canonical bytes, so
    /// the golden digests predating this field are unchanged.
    pub approvals: usize,
    /// What the attempt did.
    pub outcome: RecoveryOutcome,
}

impl RecoveryRecord {
    /// Appends the record's canonical byte encoding to `out`.
    fn write_canonical_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.committee as u64).to_be_bytes());
        out.extend_from_slice(&self.accused.0.to_be_bytes());
        out.push(u8::from(self.accused_was_honest));
        match self.prosecutor {
            Some(p) => {
                out.push(1);
                out.extend_from_slice(&p.0.to_be_bytes());
            }
            None => out.push(0),
        }
        out.push(self.outcome.code());
    }
}

/// What one epoch transition did, attached to the round report that closed
/// the epoch. Folded into the canonical bytes as a tagged extension block, so
/// runs without epoch machinery keep their pre-epoch encoding byte-identical.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EpochTransitionReport {
    /// The epoch that just closed (0-based).
    pub epoch: u64,
    /// Validators that joined at this boundary (appended in `Syncing` state).
    pub joined: Vec<NodeId>,
    /// Validators marked `Left` at this boundary.
    pub left: Vec<NodeId>,
    /// Members that completed state sync and turned `Active` this boundary.
    pub synced: usize,
    /// Members still `Syncing` after this boundary's sync attempts.
    pub still_syncing: usize,
    /// State-sync requests that timed out across this boundary's sessions.
    pub sync_timeouts: usize,
    /// State-sync chunks successfully delivered across this boundary.
    pub sync_chunks: usize,
    /// Committee seats whose occupant changed in the post-reshuffle
    /// assignment relative to the pre-reshuffle one.
    pub reshuffled_seats: usize,
}

impl EpochTransitionReport {
    /// Appends the report's canonical byte encoding to `out`.
    fn write_canonical_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.epoch.to_be_bytes());
        for group in [&self.joined, &self.left] {
            out.extend_from_slice(&(group.len() as u64).to_be_bytes());
            for node in group {
                out.extend_from_slice(&node.0.to_be_bytes());
            }
        }
        for count in [
            self.synced,
            self.still_syncing,
            self.sync_timeouts,
            self.sync_chunks,
            self.reshuffled_seats,
        ] {
            out.extend_from_slice(&(count as u64).to_be_bytes());
        }
    }
}

/// Everything measured during one round.
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// Round number.
    pub round: u64,
    /// Whether a (non-void) block was produced.
    pub block_produced: bool,
    /// Number of transactions offered by external users this round.
    pub txs_offered: usize,
    /// Of those, how many were valid (ground truth).
    pub txs_offered_valid: usize,
    /// Of those, how many were cross-shard (ground truth).
    pub txs_offered_cross_shard: usize,
    /// Transactions packed into the block.
    pub txs_packed: usize,
    /// Cross-shard transactions packed into the block.
    pub txs_packed_cross_shard: usize,
    /// Transactions the referee committee rejected on re-validation.
    pub rejected_by_referee: usize,
    /// Leaders evicted by the recovery procedure: `(committee, old leader)`.
    pub evicted_leaders: Vec<(usize, NodeId)>,
    /// Signed witnesses produced this round.
    pub witnesses: usize,
    /// Recoveries that could not start because the committee's partial set
    /// had no member left to prosecute (the committee sits the round out
    /// instead of panicking; the next sortition refills the partial set).
    pub skipped_recoveries: usize,
    /// Censorship (timeout) reports this round.
    pub censorship_reports: usize,
    /// Every recovery the engine attempted this round, in attempt order.
    pub recovery_log: Vec<RecoveryRecord>,
    /// Total fees distributed.
    pub fees_distributed: u64,
    /// Established reliable channels (Table I "burden on connection").
    pub channels: usize,
    /// Channels a full honest clique would have needed.
    pub full_clique_channels: usize,
    /// Per-node, per-phase traffic and storage.
    pub metrics: MetricsSink,
    /// Role groups active this round.
    pub roles: RoleGroups,
    /// Extra simulated latency spent in 2Γ recovery timeouts (µs).
    pub timeout_delays_us: u64,
    /// Whether the round ran the message-driven data plane (committee
    /// traffic as envelopes through the discrete-event network).
    pub message_driven: bool,
    /// Message-driven mode: vote-collection deadlines that fired with votes
    /// missing (the quorum-timeout fallback path).
    pub quorum_timeouts: usize,
    /// Message-driven mode: cross-shard list forwards that missed their
    /// destination deadline (the pair's transactions deferred).
    pub list_timeouts: usize,
    /// Message-driven mode: individual votes missing at collection
    /// deadlines (a per-round severity measure next to `quorum_timeouts`,
    /// which only counts deadlines that fired).
    pub votes_missing: usize,
    /// Message-driven mode: envelopes dropped by the network fault plan
    /// (partitions, loss) across every phase network this round.
    pub net_dropped_messages: u64,
    /// Deliberate vote abstentions by `Syncing` members this round (their
    /// slots are counted `Unknown`, never breaking quorum math).
    pub syncing_abstentions: usize,
    /// Votes actually received from `Syncing` members this round. The
    /// protocol forbids these; invariant checkers demand this stays zero.
    pub syncing_votes: usize,
    /// Present when this round closed an epoch: what the transition did.
    pub epoch_transition: Option<EpochTransitionReport>,
    /// Present when the round ran under open-loop traffic drive: injection,
    /// confirmation, censoring and latency accounting for this round (see
    /// [`crate::traffic`]).
    pub traffic: Option<crate::traffic::TrafficRoundReport>,
    /// Authenticated state roots committed this round, one per shard in
    /// shard order. Empty on the default map backend — the sparse-Merkle
    /// backend fills it after block application, and it rides the canonical
    /// bytes as a tagged extension block.
    pub state_roots: Vec<cycledger_crypto::sha256::Digest>,
}

impl RoundReport {
    /// Mean per-node counters for a role group in a phase (Table II cell).
    pub fn role_phase_mean(&self, role: &[NodeId], phase: Phase) -> Counters {
        if role.is_empty() {
            return Counters::default();
        }
        let (total, _) = self.metrics.group_phase(role, phase);
        Counters {
            msgs_sent: total.msgs_sent / role.len() as u64,
            msgs_received: total.msgs_received / role.len() as u64,
            bytes_sent: total.bytes_sent / role.len() as u64,
            bytes_received: total.bytes_received / role.len() as u64,
            storage_bytes: total.storage_bytes / role.len() as u64,
        }
    }

    /// Honest nodes evicted by a recovery this round (ground truth captured
    /// at accusation time). Soundness (Claim 4) demands this stays empty.
    pub fn punished_honest(&self) -> Vec<NodeId> {
        self.recovery_log
            .iter()
            .filter(|r| r.accused_was_honest && r.outcome == RecoveryOutcome::Evicted)
            .map(|r| r.accused)
            .collect()
    }

    /// Fraction of offered valid transactions that made it into the block.
    pub fn acceptance_rate(&self) -> f64 {
        if self.txs_offered_valid == 0 {
            return 0.0;
        }
        self.txs_packed as f64 / self.txs_offered_valid as f64
    }

    /// Appends a canonical byte encoding of the report to `out`: every field
    /// in declaration order, metrics in sorted `(node, phase)` order. Equal
    /// reports produce equal bytes independent of hash-map iteration order —
    /// the unit of the engine's byte-identical determinism contract.
    pub fn write_canonical_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.round.to_be_bytes());
        out.push(u8::from(self.block_produced));
        for count in [
            self.txs_offered,
            self.txs_offered_valid,
            self.txs_offered_cross_shard,
            self.txs_packed,
            self.txs_packed_cross_shard,
            self.rejected_by_referee,
            self.witnesses,
            self.skipped_recoveries,
            self.censorship_reports,
            self.channels,
            self.full_clique_channels,
        ] {
            out.extend_from_slice(&(count as u64).to_be_bytes());
        }
        out.extend_from_slice(&(self.evicted_leaders.len() as u64).to_be_bytes());
        for (committee, leader) in &self.evicted_leaders {
            out.extend_from_slice(&(*committee as u64).to_be_bytes());
            out.extend_from_slice(&leader.0.to_be_bytes());
        }
        out.extend_from_slice(&(self.recovery_log.len() as u64).to_be_bytes());
        for record in &self.recovery_log {
            record.write_canonical_bytes(out);
        }
        out.extend_from_slice(&self.fees_distributed.to_be_bytes());
        out.extend_from_slice(&self.timeout_delays_us.to_be_bytes());
        for group in [
            &self.roles.common_members,
            &self.roles.key_members,
            &self.roles.referee_members,
        ] {
            out.extend_from_slice(&(group.len() as u64).to_be_bytes());
            for node in group {
                out.extend_from_slice(&node.0.to_be_bytes());
            }
        }
        self.metrics.write_canonical_bytes(out);
        // Message-driven extension block: appended only when the round ran
        // the message-driven data plane, so fully synchronous runs keep the
        // exact pre-extension encoding (and with it their golden digests).
        if self.message_driven {
            out.push(0xD1);
            out.extend_from_slice(&(self.quorum_timeouts as u64).to_be_bytes());
            out.extend_from_slice(&(self.list_timeouts as u64).to_be_bytes());
            out.extend_from_slice(&(self.votes_missing as u64).to_be_bytes());
            out.extend_from_slice(&self.net_dropped_messages.to_be_bytes());
        }
        // Epoch extension block: appended only when this round closed an
        // epoch, so runs with the epoch machinery disabled (the default)
        // keep their pre-epoch encoding — and golden digests — unchanged.
        if let Some(transition) = &self.epoch_transition {
            out.push(0xE7);
            transition.write_canonical_bytes(out);
        }
        // Syncing-counter extension block: appended only when a `Syncing`
        // member actually abstained (or, impossibly, voted), for the same
        // golden-preservation reason.
        if self.syncing_abstentions > 0 || self.syncing_votes > 0 {
            out.push(0xE8);
            out.extend_from_slice(&(self.syncing_abstentions as u64).to_be_bytes());
            out.extend_from_slice(&(self.syncing_votes as u64).to_be_bytes());
        }
        // Open-loop traffic extension block: appended only when the round
        // ran under traffic drive, so every closed-loop run — all goldens
        // predating the harness — keeps its exact encoding.
        if let Some(traffic) = &self.traffic {
            out.push(0xAC);
            traffic.write_canonical_bytes(out);
        }
        // Authenticated-state extension block: appended only when the run
        // commits state roots (the sparse-Merkle backend), so every
        // map-backed run — all goldens predating the state layer — keeps
        // its exact encoding.
        if !self.state_roots.is_empty() {
            out.push(0xA5);
            out.extend_from_slice(&(self.state_roots.len() as u64).to_be_bytes());
            for root in &self.state_roots {
                out.extend_from_slice(root.as_bytes());
            }
        }
    }
}

/// Aggregate over a multi-round simulation.
#[derive(Clone, Debug, Default)]
pub struct SimulationSummary {
    /// Per-round reports.
    pub rounds: Vec<RoundReport>,
}

impl SimulationSummary {
    /// Number of rounds simulated.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total transactions packed over the whole run.
    pub fn total_packed(&self) -> usize {
        self.rounds.iter().map(|r| r.txs_packed).sum()
    }

    /// Mean transactions packed per round (the throughput proxy used by the
    /// scalability experiment).
    pub fn mean_throughput(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.total_packed() as f64 / self.rounds.len() as f64
    }

    /// Rounds in which a block was produced.
    pub fn blocks_produced(&self) -> usize {
        self.rounds.iter().filter(|r| r.block_produced).count()
    }

    /// Total leaders evicted across the run.
    pub fn total_evictions(&self) -> usize {
        self.rounds.iter().map(|r| r.evicted_leaders.len()).sum()
    }

    /// Mean acceptance rate of valid offered transactions.
    pub fn mean_acceptance_rate(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.acceptance_rate()).sum::<f64>() / self.rounds.len() as f64
    }

    /// Total recoveries skipped for lack of a prosecutor across the run.
    pub fn total_skipped_recoveries(&self) -> usize {
        self.rounds.iter().map(|r| r.skipped_recoveries).sum()
    }

    /// Total censorship reports across the run.
    pub fn total_censorship_reports(&self) -> usize {
        self.rounds.iter().map(|r| r.censorship_reports).sum()
    }

    /// Total signed witnesses across the run.
    pub fn total_witnesses(&self) -> usize {
        self.rounds.iter().map(|r| r.witnesses).sum()
    }

    /// Every honest node evicted by a recovery anywhere in the run.
    pub fn punished_honest(&self) -> Vec<NodeId> {
        self.rounds
            .iter()
            .flat_map(|r| r.punished_honest())
            .collect()
    }

    /// Total quorum-timeout fallbacks across the run (message-driven mode).
    pub fn total_quorum_timeouts(&self) -> usize {
        self.rounds.iter().map(|r| r.quorum_timeouts).sum()
    }

    /// Total cross-shard list-forward timeouts across the run
    /// (message-driven mode).
    pub fn total_list_timeouts(&self) -> usize {
        self.rounds.iter().map(|r| r.list_timeouts).sum()
    }

    /// Total votes missing at collection deadlines across the run
    /// (message-driven mode).
    pub fn total_votes_missing(&self) -> usize {
        self.rounds.iter().map(|r| r.votes_missing).sum()
    }

    /// Total envelopes dropped by network faults across the run
    /// (message-driven mode).
    pub fn total_net_dropped_messages(&self) -> u64 {
        self.rounds.iter().map(|r| r.net_dropped_messages).sum()
    }

    /// Number of epoch transitions that ran across the run.
    pub fn total_epoch_transitions(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.epoch_transition.is_some())
            .count()
    }

    /// Members that completed state sync across every epoch boundary.
    pub fn total_synced(&self) -> usize {
        self.rounds
            .iter()
            .filter_map(|r| r.epoch_transition.as_ref())
            .map(|t| t.synced)
            .sum()
    }

    /// State-sync request timeouts across every epoch boundary.
    pub fn total_sync_timeouts(&self) -> usize {
        self.rounds
            .iter()
            .filter_map(|r| r.epoch_transition.as_ref())
            .map(|t| t.sync_timeouts)
            .sum()
    }

    /// Total vote abstentions by `Syncing` members across the run.
    pub fn total_syncing_abstentions(&self) -> usize {
        self.rounds.iter().map(|r| r.syncing_abstentions).sum()
    }

    /// Total votes received from `Syncing` members across the run. The
    /// no-syncing-votes invariant demands this stays zero.
    pub fn total_syncing_votes(&self) -> usize {
        self.rounds.iter().map(|r| r.syncing_votes).sum()
    }

    /// Total arrivals injected across the run (open-loop traffic only).
    pub fn total_traffic_injected(&self) -> usize {
        self.rounds
            .iter()
            .filter_map(|r| r.traffic.as_ref())
            .map(|t| t.injected)
            .sum()
    }

    /// Total open-loop confirmations across the run.
    pub fn total_traffic_confirmed(&self) -> usize {
        self.rounds
            .iter()
            .filter_map(|r| r.traffic.as_ref())
            .map(|t| t.confirmed)
            .sum()
    }

    /// Total open-loop transactions censored (injected, then expired
    /// unpacked under the driven plane) across the run.
    pub fn total_traffic_censored(&self) -> usize {
        self.rounds
            .iter()
            .filter_map(|r| r.traffic.as_ref())
            .map(|t| t.censored)
            .sum()
    }

    /// A digest over the summary's canonical byte encoding.
    ///
    /// Two summaries with identical content produce identical digests
    /// regardless of worker count, hash-map iteration order, or process; the
    /// determinism tests compare runs at 1, 2 and 8 executor threads through
    /// this.
    pub fn canonical_digest(&self) -> cycledger_crypto::sha256::Digest {
        let mut bytes = Vec::with_capacity(4096);
        bytes.extend_from_slice(&(self.rounds.len() as u64).to_be_bytes());
        for round in &self.rounds {
            round.write_canonical_bytes(&mut bytes);
        }
        cycledger_crypto::sha256::hash_parts(&[b"cycledger/summary", &bytes])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_report(round: u64, packed: usize, valid: usize) -> RoundReport {
        RoundReport {
            round,
            block_produced: packed > 0,
            txs_offered: valid + 2,
            txs_offered_valid: valid,
            txs_offered_cross_shard: 1,
            txs_packed: packed,
            txs_packed_cross_shard: 0,
            rejected_by_referee: 0,
            evicted_leaders: vec![(0, NodeId(1))],
            witnesses: 1,
            skipped_recoveries: 0,
            censorship_reports: 0,
            recovery_log: vec![RecoveryRecord {
                committee: 0,
                accused: NodeId(1),
                accused_was_honest: false,
                prosecutor: Some(NodeId(2)),
                committee_size: 5,
                approvals: 4,
                outcome: RecoveryOutcome::Evicted,
            }],
            fees_distributed: 10,
            channels: 100,
            full_clique_channels: 1000,
            metrics: MetricsSink::new(),
            roles: RoleGroups::default(),
            timeout_delays_us: 0,
            message_driven: false,
            quorum_timeouts: 0,
            list_timeouts: 0,
            votes_missing: 0,
            net_dropped_messages: 0,
            syncing_abstentions: 0,
            syncing_votes: 0,
            epoch_transition: None,
            traffic: None,
            state_roots: Vec::new(),
        }
    }

    #[test]
    fn acceptance_rate_and_summary_aggregation() {
        let summary = SimulationSummary {
            rounds: vec![
                dummy_report(0, 8, 10),
                dummy_report(1, 10, 10),
                dummy_report(2, 0, 10),
            ],
        };
        assert_eq!(summary.num_rounds(), 3);
        assert_eq!(summary.total_packed(), 18);
        assert_eq!(summary.blocks_produced(), 2);
        assert_eq!(summary.total_evictions(), 3);
        assert!((summary.mean_throughput() - 6.0).abs() < 1e-9);
        assert!((summary.mean_acceptance_rate() - (0.8 + 1.0 + 0.0) / 3.0).abs() < 1e-9);
        let empty = SimulationSummary::default();
        assert_eq!(empty.mean_throughput(), 0.0);
        assert_eq!(empty.mean_acceptance_rate(), 0.0);
    }

    #[test]
    fn punished_honest_reads_the_recovery_log() {
        let mut report = dummy_report(0, 1, 1);
        assert!(
            report.punished_honest().is_empty(),
            "malicious eviction is not punishment of the honest"
        );
        report.recovery_log.push(RecoveryRecord {
            committee: 1,
            accused: NodeId(9),
            accused_was_honest: true,
            prosecutor: Some(NodeId(3)),
            committee_size: 5,
            approvals: 3,
            outcome: RecoveryOutcome::Evicted,
        });
        report.recovery_log.push(RecoveryRecord {
            committee: 1,
            accused: NodeId(10),
            accused_was_honest: true,
            prosecutor: Some(NodeId(3)),
            committee_size: 5,
            approvals: 1,
            outcome: RecoveryOutcome::Rejected,
        });
        assert_eq!(report.punished_honest(), vec![NodeId(9)]);
        let summary = SimulationSummary {
            rounds: vec![report],
        };
        assert_eq!(summary.punished_honest(), vec![NodeId(9)]);
    }

    #[test]
    fn recovery_log_reaches_the_canonical_bytes() {
        let base = dummy_report(0, 1, 1);
        let mut changed = base.clone();
        changed.recovery_log[0].accused_was_honest = true;
        let encode = |r: &RoundReport| {
            let mut bytes = Vec::new();
            r.write_canonical_bytes(&mut bytes);
            bytes
        };
        assert_ne!(
            encode(&base),
            encode(&changed),
            "the recovery log must be part of the canonical encoding"
        );
    }

    #[test]
    fn message_driven_extension_block_is_gated() {
        // Synchronous rounds must keep the exact pre-extension encoding
        // (golden digests depend on it); driven rounds append the extension
        // block, and its counters are digest-relevant.
        let sync = dummy_report(0, 1, 1);
        let mut driven = sync.clone();
        driven.message_driven = true;
        let encode = |r: &RoundReport| {
            let mut bytes = Vec::new();
            r.write_canonical_bytes(&mut bytes);
            bytes
        };
        let sync_bytes = encode(&sync);
        let driven_bytes = encode(&driven);
        assert_eq!(
            driven_bytes.len(),
            sync_bytes.len() + 1 + 4 * 8,
            "driven rounds append exactly the tagged extension block"
        );
        assert_eq!(&driven_bytes[..sync_bytes.len()], &sync_bytes[..]);
        // Counters on a synchronous round never reach the encoding…
        let mut sync_with_counts = sync.clone();
        sync_with_counts.quorum_timeouts = 5;
        sync_with_counts.net_dropped_messages = 99;
        assert_eq!(encode(&sync_with_counts), sync_bytes);
        // …but on a driven round they are digest-relevant.
        let mut driven_with_counts = driven.clone();
        driven_with_counts.quorum_timeouts = 5;
        assert_ne!(encode(&driven_with_counts), driven_bytes);
    }

    #[test]
    fn epoch_extension_block_is_gated() {
        // Rounds without an epoch transition keep the exact pre-epoch
        // encoding (all 21 committed goldens depend on it); boundary rounds
        // append the tagged extension, and its content is digest-relevant.
        let plain = dummy_report(0, 1, 1);
        let encode = |r: &RoundReport| {
            let mut bytes = Vec::new();
            r.write_canonical_bytes(&mut bytes);
            bytes
        };
        let plain_bytes = encode(&plain);
        let mut boundary = plain.clone();
        boundary.epoch_transition = Some(EpochTransitionReport {
            epoch: 3,
            joined: vec![NodeId(40), NodeId(41)],
            left: vec![NodeId(7)],
            synced: 2,
            still_syncing: 0,
            sync_timeouts: 1,
            sync_chunks: 4,
            reshuffled_seats: 12,
        });
        let boundary_bytes = encode(&boundary);
        // tag + epoch + joined(len + 2 ids) + left(len + 1 id) + 5 counters
        assert_eq!(
            boundary_bytes.len(),
            plain_bytes.len() + 1 + 8 + (8 + 2 * 4) + (8 + 4) + 5 * 8,
            "boundary rounds append exactly the tagged epoch block"
        );
        assert_eq!(&boundary_bytes[..plain_bytes.len()], &plain_bytes[..]);
        let mut changed = boundary.clone();
        changed.epoch_transition.as_mut().unwrap().synced = 1;
        assert_ne!(encode(&changed), boundary_bytes);
    }

    #[test]
    fn syncing_counter_extension_block_is_gated() {
        let plain = dummy_report(0, 1, 1);
        let encode = |r: &RoundReport| {
            let mut bytes = Vec::new();
            r.write_canonical_bytes(&mut bytes);
            bytes
        };
        let plain_bytes = encode(&plain);
        let mut abstained = plain.clone();
        abstained.syncing_abstentions = 3;
        let abstained_bytes = encode(&abstained);
        assert_eq!(
            abstained_bytes.len(),
            plain_bytes.len() + 1 + 2 * 8,
            "abstentions append exactly the tagged syncing block"
        );
        assert_eq!(&abstained_bytes[..plain_bytes.len()], &plain_bytes[..]);
        // A forbidden syncing vote is also digest-relevant.
        let mut voted = plain.clone();
        voted.syncing_votes = 1;
        assert_ne!(encode(&voted), plain_bytes);
    }

    #[test]
    fn traffic_extension_block_is_gated() {
        // Closed-loop rounds (every golden predating the traffic harness)
        // must keep their exact encoding; open-loop rounds append the
        // tagged block, and its counters are digest-relevant.
        let closed = dummy_report(0, 1, 1);
        let encode = |r: &RoundReport| {
            let mut bytes = Vec::new();
            r.write_canonical_bytes(&mut bytes);
            bytes
        };
        let closed_bytes = encode(&closed);
        let mut open = closed.clone();
        open.traffic = Some(crate::traffic::TrafficRoundReport {
            injected: 12,
            rejected_invalid: 1,
            confirmed: 10,
            censored: 1,
            backlog: 4,
            round_duration_us: 1_200_000,
            latency_sum_us: 9_000_000,
            max_latency_us: 1_400_000,
        });
        let open_bytes = encode(&open);
        assert_eq!(
            open_bytes.len(),
            closed_bytes.len() + 1 + 8 * 8,
            "open-loop rounds append exactly the tagged traffic block"
        );
        assert_eq!(&open_bytes[..closed_bytes.len()], &closed_bytes[..]);
        // Censoring is digest-relevant, not silently dropped.
        let mut censored_more = open.clone();
        censored_more.traffic.as_mut().unwrap().censored += 1;
        assert_ne!(encode(&censored_more), open_bytes);
    }

    #[test]
    fn state_root_extension_block_is_gated() {
        // Map-backed rounds (every golden predating the state layer) must
        // keep their exact encoding; SMT-backed rounds append the tagged
        // block, and the roots are digest-relevant.
        let plain = dummy_report(0, 1, 1);
        let encode = |r: &RoundReport| {
            let mut bytes = Vec::new();
            r.write_canonical_bytes(&mut bytes);
            bytes
        };
        let plain_bytes = encode(&plain);
        let mut authenticated = plain.clone();
        authenticated.state_roots = vec![
            cycledger_crypto::sha256::sha256(b"root-shard-0"),
            cycledger_crypto::sha256::sha256(b"root-shard-1"),
        ];
        let auth_bytes = encode(&authenticated);
        assert_eq!(
            auth_bytes.len(),
            plain_bytes.len() + 1 + 8 + 2 * 32,
            "authenticated rounds append exactly the tagged state block"
        );
        assert_eq!(&auth_bytes[..plain_bytes.len()], &plain_bytes[..]);
        let mut changed = authenticated.clone();
        changed.state_roots[1] = cycledger_crypto::sha256::sha256(b"tampered");
        assert_ne!(encode(&changed), auth_bytes);
    }

    #[test]
    fn traffic_summary_aggregation() {
        let mut with_traffic = dummy_report(1, 1, 1);
        with_traffic.traffic = Some(crate::traffic::TrafficRoundReport {
            injected: 20,
            rejected_invalid: 2,
            confirmed: 15,
            censored: 3,
            ..Default::default()
        });
        let summary = SimulationSummary {
            rounds: vec![dummy_report(0, 1, 1), with_traffic],
        };
        assert_eq!(summary.total_traffic_injected(), 20);
        assert_eq!(summary.total_traffic_confirmed(), 15);
        assert_eq!(summary.total_traffic_censored(), 3);
    }

    #[test]
    fn epoch_summary_aggregation() {
        let mut with_epoch = dummy_report(1, 1, 1);
        with_epoch.epoch_transition = Some(EpochTransitionReport {
            epoch: 0,
            synced: 2,
            sync_timeouts: 3,
            ..EpochTransitionReport::default()
        });
        with_epoch.syncing_abstentions = 4;
        let summary = SimulationSummary {
            rounds: vec![dummy_report(0, 1, 1), with_epoch],
        };
        assert_eq!(summary.total_epoch_transitions(), 1);
        assert_eq!(summary.total_synced(), 2);
        assert_eq!(summary.total_sync_timeouts(), 3);
        assert_eq!(summary.total_syncing_abstentions(), 4);
        assert_eq!(summary.total_syncing_votes(), 0);
    }

    #[test]
    fn role_phase_mean_handles_empty_groups() {
        let report = dummy_report(0, 1, 1);
        assert_eq!(
            report.role_phase_mean(&[], Phase::BlockGeneration),
            Counters::default()
        );
    }
}
