//! Epoch schedule and validator churn.
//!
//! The paper's sortition resets committees every round, but the validator
//! *set* only changes at epoch boundaries: every `epoch_length` rounds the
//! simulation finalizes the epoch, lets a deterministic lottery retire some
//! validators, admits new ones in [`Syncing`](crate::node::MembershipState)
//! state, and reshuffles the committees with the PVSS beacon output of the
//! boundary round folded back into the sortition randomness. Reputation
//! carries over — a validator's accumulated score survives reshuffles, and a
//! joiner starts from zero (§VII-A).
//!
//! Everything here is a pure function of the registry, the epoch number and
//! the boundary round's randomness, which is what keeps multi-worker runs
//! byte-identical: the lottery is a hash comparison, never an iteration over
//! a hash map.

use cycledger_crypto::sha256::{hash_parts, Digest};
use cycledger_net::topology::NodeId;

use crate::config::ProtocolConfig;
use crate::node::{MembershipState, NodeRegistry};
use crate::sortition::{AssignmentParams, RoundAssignment};

/// When epochs end and how much churn each boundary admits.
///
/// Built from the [`ProtocolConfig`] epoch knobs; `None` when
/// `epoch_length == 0`, which disables the whole epoch machinery and keeps
/// pre-epoch runs (and their golden digests) untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochSchedule {
    /// Rounds per epoch (always > 0 here).
    pub epoch_length: u64,
    /// Validators admitted (in `Syncing` state) at each boundary.
    pub joins_per_epoch: u32,
    /// Validators the leave lottery may retire at each boundary.
    pub leaves_per_epoch: u32,
}

impl EpochSchedule {
    /// Reads the schedule out of a config; `None` when epochs are disabled.
    pub fn from_config(config: &ProtocolConfig) -> Option<EpochSchedule> {
        if config.epoch_length == 0 {
            return None;
        }
        Some(EpochSchedule {
            epoch_length: config.epoch_length,
            joins_per_epoch: config.joins_per_epoch,
            leaves_per_epoch: config.leaves_per_epoch,
        })
    }

    /// True when `completed_rounds` rounds close an epoch (the boundary sits
    /// *after* the last round of the epoch, so the first boundary is at
    /// `epoch_length` completed rounds, never at zero).
    pub fn is_boundary(&self, completed_rounds: u64) -> bool {
        completed_rounds > 0 && completed_rounds.is_multiple_of(self.epoch_length)
    }

    /// The epoch a round belongs to (0-based).
    pub fn epoch_of(&self, round: u64) -> u64 {
        round / self.epoch_length
    }
}

/// Derives the epoch's sortition randomness by folding the boundary round's
/// PVSS beacon output back in — the "feed the beacon into the next epoch's
/// sortition" loop of the tentpole.
pub fn epoch_randomness(epoch: u64, beacon: Digest) -> Digest {
    hash_parts(&[b"cycledger/epoch", &epoch.to_be_bytes(), beacon.as_bytes()])
}

/// The per-node leave-lottery value: smallest values leave first. A pure
/// function of `(epoch, randomness, node)`, so every worker agrees without
/// coordination.
fn leave_lottery(epoch: u64, randomness: Digest, node: NodeId) -> Digest {
    hash_parts(&[
        b"cycledger/epoch-leave",
        &epoch.to_be_bytes(),
        randomness.as_bytes(),
        &node.0.to_be_bytes(),
    ])
}

/// Minimum `Active` population the sortition floor demands: the referee
/// committee, one leader and a partial set per committee, and at least one
/// node more (see the assertion in [`assign_round`](crate::assign_round)).
pub fn min_active_nodes(params: AssignmentParams) -> usize {
    params.referee_size + params.committees * (1 + params.partial_set_size) + 1
}

/// Runs the deterministic leave lottery: up to `schedule.leaves_per_epoch`
/// currently-`Active` nodes retire, clamped so the `Active` population never
/// drops below [`min_active_nodes`] (an epoch may therefore retire fewer
/// nodes than configured, or none). Returns the leavers in lottery order;
/// the caller marks them [`MembershipState::Left`].
pub fn pick_leavers(
    registry: &NodeRegistry,
    params: AssignmentParams,
    schedule: &EpochSchedule,
    epoch: u64,
    randomness: Digest,
) -> Vec<NodeId> {
    let active: Vec<NodeId> = registry
        .iter()
        .filter(|n| n.membership == MembershipState::Active)
        .map(|n| n.id)
        .collect();
    let headroom = active.len().saturating_sub(min_active_nodes(params));
    let quota = (schedule.leaves_per_epoch as usize).min(headroom);
    if quota == 0 {
        return Vec::new();
    }
    let mut ranked = active;
    ranked.sort_by_key(|&id| leave_lottery(epoch, randomness, id));
    ranked.truncate(quota);
    ranked
}

/// Number of seats whose occupant changed between two assignments: the
/// referee seats plus every committee's member seats, compared positionally
/// (a grown or shrunk group counts its length difference as changed seats).
/// The transition report carries this as a reshuffle-magnitude measure.
pub fn seat_changes(old: &RoundAssignment, new: &RoundAssignment) -> usize {
    fn diff(a: &[NodeId], b: &[NodeId]) -> usize {
        a.iter().zip(b).filter(|(x, y)| x != y).count() + a.len().abs_diff(b.len())
    }
    let mut changed = diff(&old.referee, &new.referee);
    for (o, n) in old.committees.iter().zip(&new.committees) {
        changed += diff(&o.members, &n.members);
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AdversaryConfig;
    use crate::config::ProtocolConfig;

    fn params() -> AssignmentParams {
        AssignmentParams {
            committees: 2,
            partial_set_size: 2,
            referee_size: 3,
        }
    }

    #[test]
    fn schedule_comes_from_the_config_knobs() {
        let mut config = ProtocolConfig::default();
        assert_eq!(EpochSchedule::from_config(&config), None);
        config.epoch_length = 4;
        config.joins_per_epoch = 2;
        config.leaves_per_epoch = 1;
        let schedule = EpochSchedule::from_config(&config).expect("enabled");
        assert_eq!(schedule.epoch_length, 4);
        assert!(!schedule.is_boundary(0), "no boundary before any round ran");
        assert!(!schedule.is_boundary(3));
        assert!(schedule.is_boundary(4));
        assert!(schedule.is_boundary(8));
        assert_eq!(schedule.epoch_of(0), 0);
        assert_eq!(schedule.epoch_of(3), 0);
        assert_eq!(schedule.epoch_of(4), 1);
    }

    #[test]
    fn epoch_randomness_depends_on_epoch_and_beacon() {
        let beacon = hash_parts(&[b"beacon"]);
        let r0 = epoch_randomness(0, beacon);
        let r1 = epoch_randomness(1, beacon);
        assert_ne!(r0, r1);
        assert_ne!(r0, beacon, "the derivation is domain-separated");
        assert_eq!(r0, epoch_randomness(0, beacon), "pure function");
    }

    #[test]
    fn leave_lottery_is_deterministic_and_clamped() {
        // 12 nodes, floor = 3 + 2*(1+2) + 1 = 10 ⇒ headroom 2.
        let registry = NodeRegistry::generate(12, &AdversaryConfig::default(), 4, 0, 7);
        let schedule = EpochSchedule {
            epoch_length: 4,
            joins_per_epoch: 0,
            leaves_per_epoch: 5,
        };
        let randomness = hash_parts(&[b"epoch-rand"]);
        let leavers = pick_leavers(&registry, params(), &schedule, 1, randomness);
        assert_eq!(leavers.len(), 2, "clamped to the sortition headroom");
        assert_eq!(
            leavers,
            pick_leavers(&registry, params(), &schedule, 1, randomness),
            "the lottery is deterministic"
        );
        let other = pick_leavers(&registry, params(), &schedule, 2, randomness);
        assert_eq!(other.len(), 2);
        // (Different epochs *may* pick the same pair; the lottery value must
        // differ even then.)
        assert_ne!(
            leave_lottery(1, randomness, leavers[0]),
            leave_lottery(2, randomness, leavers[0]),
        );
    }

    #[test]
    fn leave_lottery_never_breaks_the_floor() {
        // Exactly at the floor: nobody may leave.
        let registry = NodeRegistry::generate(10, &AdversaryConfig::default(), 4, 0, 7);
        let schedule = EpochSchedule {
            epoch_length: 4,
            joins_per_epoch: 0,
            leaves_per_epoch: 3,
        };
        let leavers = pick_leavers(
            &registry,
            params(),
            &schedule,
            0,
            hash_parts(&[b"epoch-rand"]),
        );
        assert!(leavers.is_empty());
    }

    #[test]
    fn left_nodes_do_not_re_enter_the_lottery() {
        let mut registry = NodeRegistry::generate(13, &AdversaryConfig::default(), 4, 0, 7);
        let schedule = EpochSchedule {
            epoch_length: 4,
            joins_per_epoch: 0,
            leaves_per_epoch: 1,
        };
        let randomness = hash_parts(&[b"epoch-rand"]);
        let first = pick_leavers(&registry, params(), &schedule, 0, randomness);
        assert_eq!(first.len(), 1);
        registry.set_membership(first[0], MembershipState::Left);
        let second = pick_leavers(&registry, params(), &schedule, 0, randomness);
        assert_eq!(second.len(), 1);
        assert_ne!(first[0], second[0]);
    }
}
