//! Integration gates over the multi-epoch lifecycle:
//!
//! * crash-stopped members (the churn fault the paper's reconfiguration
//!   argument assumes) never stall a round or an epoch boundary, and the
//!   run stays deterministic across executor worker counts;
//! * a crash window that ends mid-run restores full liveness afterwards;
//! * joiners partitioned through their admission boundary stay `Syncing`
//!   (their slots abstain, never vote) and catch up via the start-of-round
//!   sync retry once the partition heals;
//! * epoch boundaries fire on schedule through all of the above.

use cycledger_net::faults::FaultPlan;
use cycledger_net::time::SimTime;
use cycledger_net::topology::NodeId;
use cycledger_protocol::config::ProtocolConfig;
use cycledger_protocol::node::MembershipState;
use cycledger_protocol::report::SimulationSummary;
use cycledger_protocol::simulation::Simulation;

fn epoch_config(seed: u64) -> ProtocolConfig {
    ProtocolConfig {
        committees: 2,
        committee_size: 8,
        partial_set_size: 2,
        referee_size: 5,
        txs_per_round: 40,
        accounts_per_shard: 24,
        cross_shard_ratio: 0.2,
        invalid_ratio: 0.0,
        pow_difficulty: 2,
        verify_signatures: false,
        message_driven: true,
        epoch_length: 2,
        joins_per_epoch: 2,
        leaves_per_epoch: 1,
        seed,
        ..ProtocolConfig::default()
    }
}

/// Runs `rounds` rounds, applying `fault_for_round` before each.
fn run_with_faults(
    mut config: ProtocolConfig,
    workers: usize,
    rounds: u64,
    fault_for_round: impl Fn(&Simulation, u64) -> FaultPlan,
) -> (SimulationSummary, Simulation) {
    config.worker_threads = workers;
    let mut sim = Simulation::new(config).expect("valid config");
    for round in 0..rounds {
        sim.set_fault_plan(fault_for_round(&sim, round));
        sim.run_round();
    }
    let summary = SimulationSummary {
        rounds: sim.reports().to_vec(),
    };
    (summary, sim)
}

#[test]
fn crash_stopped_commons_never_stall_rounds_or_boundaries() {
    // Two commons of committee 0 crash permanently before the first round;
    // every round still commits (their votes backfill `Unknown`), both epoch
    // boundaries fire, and the whole run is worker-count deterministic.
    let run = |workers: usize| {
        run_with_faults(epoch_config(7001), workers, 4, |sim, _| {
            let commons = sim.assignment().committees[0].common_members();
            FaultPlan::default()
                .with_crash(commons[0], SimTime::ZERO, None)
                .with_crash(commons[1], SimTime::ZERO, None)
        })
    };
    let (summary, sim) = run(1);
    assert_eq!(
        summary.blocks_produced(),
        4,
        "crashes must not stall rounds"
    );
    assert_eq!(sim.chain().height(), 4);
    assert_eq!(summary.total_epoch_transitions(), 2);
    assert_eq!(summary.total_syncing_votes(), 0);

    let (other, _) = run(4);
    assert_eq!(
        summary.canonical_digest(),
        other.canonical_digest(),
        "crash-stop schedule must be worker-count deterministic"
    );
}

#[test]
fn liveness_is_full_again_after_a_crash_window_ends() {
    // The same two commons are down for rounds 0-1 (spanning the first
    // boundary) and back for rounds 2-3: the degraded rounds still commit,
    // and the healed rounds run without a single quorum timeout.
    let (summary, sim) = run_with_faults(epoch_config(7002), 1, 4, |sim, round| {
        if round < 2 {
            let commons = sim.assignment().committees[0].common_members();
            FaultPlan::default()
                .with_crash(commons[0], SimTime::ZERO, None)
                .with_crash(commons[1], SimTime::ZERO, None)
        } else {
            FaultPlan::default()
        }
    });
    assert_eq!(summary.blocks_produced(), 4);
    assert_eq!(sim.chain().height(), 4);
    assert_eq!(summary.total_epoch_transitions(), 2);
    let healed_timeouts: usize = summary.rounds[2..].iter().map(|r| r.quorum_timeouts).sum();
    assert_eq!(healed_timeouts, 0, "restarted members restore full quorums");
}

#[test]
fn partitioned_joiners_catch_up_once_the_partition_heals() {
    // Both epochs' joiners (ids continue the index sequence, so the plan can
    // name them before they exist) are severed through the first admission
    // boundary; the heal before round 2 lets the start-of-round sync retry
    // finish the catch-up, flipping them `Syncing` -> `Active`.
    let mut config = epoch_config(7003);
    config.leaves_per_epoch = 0;
    let initial = config.total_nodes() as u32;
    let joiners: Vec<NodeId> = (initial..initial + 4).map(NodeId).collect();
    let (summary, sim) = run_with_faults(config, 1, 4, |_, round| {
        if round < 2 {
            FaultPlan::partition(joiners.clone())
        } else {
            FaultPlan::default()
        }
    });
    assert!(
        summary.total_sync_timeouts() > 0,
        "the first boundary's sync sessions must time out under the partition"
    );
    assert_eq!(
        summary.total_synced(),
        4,
        "every joiner catches up after the heal"
    );
    assert_eq!(sim.registry().count_in_state(MembershipState::Syncing), 0);
    assert_eq!(
        summary.total_syncing_votes(),
        0,
        "no vote counts while catching up"
    );
    assert_eq!(summary.blocks_produced(), 4, "quorum math is unbroken");
    assert_eq!(summary.total_epoch_transitions(), 2);
}
