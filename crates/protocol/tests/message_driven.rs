//! Integration gates over the message-driven data plane:
//!
//! * a clean message-driven run is live (blocks every round, no quorum
//!   timeouts) and deterministic across 1/2/8 executor workers;
//! * a partition severing a committee minority takes the quorum-timeout
//!   fallback and measurably changes round outcomes, liveness resumes after
//!   the heal, and worker-count determinism still holds;
//! * isolating a leader suppresses the quorum certificate and routes the
//!   committee through recovery;
//! * a random-seed property pins that delivery order is seeded virtual
//!   time, never thread order.

use cycledger_net::faults::FaultPlan;
use cycledger_net::topology::NodeId;
use cycledger_protocol::adversary::Behavior;
use cycledger_protocol::config::ProtocolConfig;
use cycledger_protocol::report::SimulationSummary;
use cycledger_protocol::simulation::Simulation;
use proptest::prelude::*;

fn driven_config(seed: u64) -> ProtocolConfig {
    ProtocolConfig {
        committees: 2,
        committee_size: 8,
        partial_set_size: 2,
        referee_size: 5,
        txs_per_round: 40,
        accounts_per_shard: 24,
        cross_shard_ratio: 0.2,
        invalid_ratio: 0.0,
        pow_difficulty: 2,
        verify_signatures: false,
        message_driven: true,
        seed,
        ..ProtocolConfig::default()
    }
}

/// Runs `rounds` rounds, applying `fault_for_round` before each.
fn run_with_faults(
    mut config: ProtocolConfig,
    workers: usize,
    rounds: u64,
    fault_for_round: impl Fn(&Simulation, u64) -> FaultPlan,
) -> (SimulationSummary, Simulation) {
    config.worker_threads = workers;
    let mut sim = Simulation::new(config).expect("valid config");
    for round in 0..rounds {
        sim.set_fault_plan(fault_for_round(&sim, round));
        sim.run_round();
    }
    let summary = SimulationSummary {
        rounds: sim.reports().to_vec(),
    };
    (summary, sim)
}

#[test]
fn clean_message_driven_run_is_live_and_deterministic_across_workers() {
    let digest_at = |workers: usize| {
        let (summary, _) =
            run_with_faults(driven_config(901), workers, 3, |_, _| FaultPlan::default());
        assert_eq!(
            summary.blocks_produced(),
            3,
            "liveness at {workers} workers"
        );
        assert_eq!(
            summary.total_quorum_timeouts(),
            0,
            "clean run never times out"
        );
        assert_eq!(summary.total_net_dropped_messages(), 0);
        assert!(summary.mean_acceptance_rate() > 0.9);
        format!("{:?}", summary.canonical_digest())
    };
    let baseline = digest_at(1);
    assert_eq!(baseline, digest_at(2));
    assert_eq!(baseline, digest_at(8));
}

#[test]
fn synchronous_and_driven_modes_agree_on_honest_decisions() {
    // Same seed, no faults: the two data planes must accept exactly the same
    // transactions (delivery order differs, decisions must not).
    let run = |message_driven: bool| {
        let mut config = driven_config(902);
        config.message_driven = message_driven;
        let mut sim = Simulation::new(config).unwrap();
        let summary = sim.run(3);
        summary
            .rounds
            .iter()
            .map(|r| (r.block_produced, r.txs_packed, r.txs_packed_cross_shard))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn partition_takes_the_timeout_path_and_heals() {
    // Sever four of committee 0's five common members for rounds 0–1, heal
    // from round 2 on. Only four members stay reachable, so:
    //  * the vote deadline fires with four votes missing (quorum-timeout
    //    fallback) and no transaction reaches the strict majority — the
    //    committee's TXdecSET collapses;
    //  * Algorithm 3 cannot assemble a majority of CONFIRMs either, so the
    //    committee goes through recovery — whose impeachment vote is
    //    *itself* blocked by the same partition (no majority reachable), so
    //    the honest leader keeps its seat;
    //  * the healthy committee keeps producing blocks, and after the heal
    //    acceptance returns to normal.
    let commons_of_committee0 = |sim: &Simulation| -> Vec<NodeId> {
        let committee = &sim.assignment().committees[0];
        committee
            .members
            .iter()
            .copied()
            .filter(|&n| n != committee.leader && !committee.partial_set.contains(&n))
            .take(4)
            .collect()
    };
    let run = |workers: usize| {
        run_with_faults(driven_config(903), workers, 4, |sim, round| {
            if round < 2 {
                FaultPlan::partition(commons_of_committee0(sim))
            } else {
                FaultPlan::default()
            }
        })
    };
    let (summary, _) = run(1);

    // The timeout path really fired, and traffic was really dropped.
    assert!(
        summary.rounds[0].quorum_timeouts >= 1,
        "round 0 must take the quorum-timeout fallback"
    );
    assert!(summary.rounds[0].net_dropped_messages > 0);
    // Round outcomes changed: partitioned rounds accept fewer transactions
    // than healed rounds (committee 0's votes fall below strict majority).
    let healed_rate = summary.rounds[3].acceptance_rate();
    let partitioned_rate = summary.rounds[0].acceptance_rate();
    assert!(
        partitioned_rate < healed_rate,
        "partition must shrink acceptance: {partitioned_rate} vs healed {healed_rate}"
    );
    // Liveness throughout, and full recovery after the heal.
    assert_eq!(summary.blocks_produced(), 4);
    assert_eq!(
        summary.rounds[3].quorum_timeouts, 0,
        "healed round is clean"
    );
    assert_eq!(summary.rounds[3].net_dropped_messages, 0);
    assert!(healed_rate > 0.9);
    // Safety: the impeachment triggered by the missing certificate could not
    // assemble a majority under the same partition, so the honest leader was
    // never evicted.
    assert_eq!(summary.total_evictions(), 0);
    assert!(summary.punished_honest().is_empty());

    // Worker-count determinism holds under the fault schedule.
    let digest = |s: &SimulationSummary| format!("{:?}", s.canonical_digest());
    let baseline = digest(&summary);
    let (two, _) = run(2);
    let (eight, _) = run(8);
    assert_eq!(baseline, digest(&two));
    assert_eq!(baseline, digest(&eight));
}

#[test]
fn isolated_leader_loses_certificate_and_is_recovered() {
    // Severing the leader of committee 0 from everyone makes it
    // indistinguishable from a fail-silent leader: no TXList reaches the
    // members, no certificate is produced, and the committee impeaches and
    // replaces it (the synchrony assumption is violated for that node, so
    // the paper's model allows evicting it).
    let (summary, sim) = run_with_faults(driven_config(904), 1, 2, |sim, round| {
        if round == 0 {
            FaultPlan::partition(vec![sim.assignment().committees[0].leader])
        } else {
            FaultPlan::default()
        }
    });
    assert!(
        summary.rounds[0].evicted_leaders.len() == 1,
        "the unreachable leader must be impeached: {:?}",
        summary.rounds[0].evicted_leaders
    );
    // The retry under the new leader and the heal keep the chain alive.
    assert_eq!(summary.blocks_produced(), 2);
    assert_eq!(sim.chain().height(), 2);
    // Round 1 is clean again.
    assert_eq!(summary.rounds[1].quorum_timeouts, 0);
    assert!(summary.rounds[1].evicted_leaders.is_empty());
}

#[test]
fn partition_of_impeachment_votes_blocks_recovery() {
    // The leader of committee 0 goes fail-silent *and* the committee's
    // common members are severed from everyone. The prosecutor cannot
    // assemble an impeachment majority (its accusation broadcast never
    // reaches the commons), so the recovery is rejected and the silent
    // leader keeps its seat this round — recovery accusations really do ride
    // the faulted network.
    let mut config = driven_config(905);
    config.worker_threads = 1;
    let mut sim = Simulation::new(config).expect("valid config");
    let committee = sim.assignment().committees[0].clone();
    sim.registry_mut()
        .set_behavior(committee.leader, Behavior::SilentLeader);
    let commons: Vec<NodeId> = committee
        .members
        .iter()
        .copied()
        .filter(|&n| n != committee.leader && !committee.partial_set.contains(&n))
        .collect();
    assert!(commons.len() > committee.members.len() / 2);
    sim.set_fault_plan(FaultPlan::partition(commons));
    let report = sim.run_round().clone();
    assert_eq!(
        report.evicted_leaders,
        vec![],
        "no impeachment majority is reachable under the partition"
    );
    assert!(
        report
            .recovery_log
            .iter()
            .any(|r| r.outcome == cycledger_protocol::report::RecoveryOutcome::Rejected),
        "the impeachment must have been attempted and rejected: {:?}",
        report.recovery_log
    );
    // The healthy committee keeps the chain alive.
    assert!(report.block_produced);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Delivery order is a function of seeded virtual time, never thread
    /// order: for arbitrary seeds the driven digest is identical at 1, 2 and
    /// 8 workers, and different seeds produce different digests.
    #[test]
    fn driven_digests_are_worker_invariant_for_random_seeds(seed in 0u64..1_000_000) {
        let digest_at = |workers: usize| {
            let mut config = driven_config(seed);
            config.worker_threads = workers;
            let mut sim = Simulation::new(config).unwrap();
            let summary = sim.run(2);
            format!("{:?}", summary.canonical_digest())
        };
        let one = digest_at(1);
        prop_assert_eq!(&one, &digest_at(2));
        prop_assert_eq!(&one, &digest_at(8));
        let mut other_config = driven_config(seed ^ 0xabcdef);
        other_config.worker_threads = 1;
        let mut other = Simulation::new(other_config).unwrap();
        let other_digest = format!("{:?}", other.run(2).canonical_digest());
        prop_assert_ne!(one, other_digest);
    }
}
