//! Qualitative and quantitative protocol profiles behind Table I.
//!
//! For each comparison protocol (Elastico, OmniLedger, RapidChain) and for
//! CycLedger itself, this module produces the row of Table I: resiliency,
//! communication complexity, per-node storage, per-round failure probability,
//! decentralization assumption, dishonest-leader efficiency, incentives, and
//! connection burden. The failure probabilities come from
//! [`cycledger_analysis::failure`]; storage and channel counts use the closed
//! forms the respective papers report.

use cycledger_analysis::failure;

/// The protocols compared in Table I.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Protocol {
    /// Elastico (Luu et al., CCS 2016).
    Elastico,
    /// OmniLedger (Kokoris-Kogias et al., S&P 2018).
    OmniLedger,
    /// RapidChain (Zamani et al., CCS 2018).
    RapidChain,
    /// CycLedger (this paper).
    CycLedger,
}

impl Protocol {
    /// All compared protocols in Table I column order.
    pub const ALL: [Protocol; 4] = [
        Protocol::Elastico,
        Protocol::OmniLedger,
        Protocol::RapidChain,
        Protocol::CycLedger,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Elastico => "Elastico",
            Protocol::OmniLedger => "OmniLedger",
            Protocol::RapidChain => "RapidChain",
            Protocol::CycLedger => "CycLedger",
        }
    }
}

/// System parameters shared by all rows of the comparison.
#[derive(Clone, Copy, Debug)]
pub struct ComparisonParams {
    /// Total nodes `n`.
    pub n: u64,
    /// Committees `m`.
    pub m: u64,
    /// Committee size `c` (`n = m·c`).
    pub c: u64,
    /// Partial-set size λ (CycLedger only).
    pub lambda: u32,
}

impl ComparisonParams {
    /// The paper's running example: 2000 nodes, committees of ~200.
    pub fn paper_default() -> Self {
        ComparisonParams {
            n: 2000,
            m: 10,
            c: 200,
            lambda: 40,
        }
    }
}

/// One row of Table I.
#[derive(Clone, Debug)]
pub struct ProtocolProfile {
    /// Which protocol.
    pub protocol: Protocol,
    /// Maximum tolerated fraction of malicious nodes (resiliency `t < f·n`).
    pub resiliency: f64,
    /// Per-transaction communication complexity in units of `n` (all are Θ(n)).
    pub complexity_units_of_n: f64,
    /// Per-node storage in "items" for the given parameters.
    pub storage_items: f64,
    /// Per-round failure probability for the given parameters.
    pub round_failure: f64,
    /// The trust assumption required for decentralization.
    pub decentralization: &'static str,
    /// Whether the protocol keeps high efficiency when committee leaders are
    /// dishonest.
    pub efficient_with_dishonest_leaders: bool,
    /// Whether the protocol has an explicit incentive mechanism.
    pub incentives: bool,
    /// Number of reliable connection channels the protocol's network model
    /// requires ("burden on connection").
    pub connection_channels: u64,
    /// Qualitative burden label as printed in Table I.
    pub connection_burden: &'static str,
}

fn clique_channels(nodes: u64) -> u64 {
    nodes * nodes.saturating_sub(1) / 2
}

/// Channels CycLedger's topology needs: per-committee cliques, the key-member
/// mesh, key-member↔referee links and the referee clique (§III-B).
pub fn cycledger_channels(params: &ComparisonParams, referee_size: u64) -> u64 {
    let key_members_per_committee = params.lambda as u64 + 1;
    let key_members = params.m * key_members_per_committee;
    let per_committee = clique_channels(params.c);
    let key_mesh = clique_channels(key_members);
    let to_referee = key_members * referee_size;
    let referee_clique = clique_channels(referee_size);
    params.m * per_committee + key_mesh + to_referee + referee_clique
}

/// Builds one protocol's Table I row.
pub fn profile(protocol: Protocol, params: &ComparisonParams) -> ProtocolProfile {
    let ComparisonParams { n, m, c, lambda } = *params;
    let referee_size = c;
    match protocol {
        Protocol::Elastico => ProtocolProfile {
            protocol,
            resiliency: 0.25,
            complexity_units_of_n: 1.0,
            storage_items: n as f64,
            round_failure: failure::quarter_resilient_round_failure(m, c),
            decentralization: "no always-honest party",
            efficient_with_dishonest_leaders: false,
            incentives: false,
            connection_channels: clique_channels(n),
            connection_burden: "heavy",
        },
        Protocol::OmniLedger => ProtocolProfile {
            protocol,
            resiliency: 0.25,
            complexity_units_of_n: 1.0,
            storage_items: c as f64 + (m as f64).log2().max(0.0),
            round_failure: failure::quarter_resilient_round_failure(m, c),
            decentralization: "an honest client",
            efficient_with_dishonest_leaders: false,
            incentives: false,
            connection_channels: clique_channels(n),
            connection_burden: "heavy",
        },
        Protocol::RapidChain => ProtocolProfile {
            protocol,
            resiliency: 1.0 / 3.0,
            complexity_units_of_n: 1.0,
            storage_items: c as f64,
            round_failure: failure::rapidchain_round_failure(m, c),
            decentralization: "an honest reference committee",
            efficient_with_dishonest_leaders: false,
            incentives: false,
            connection_channels: clique_channels(n),
            connection_burden: "heavy",
        },
        Protocol::CycLedger => ProtocolProfile {
            protocol,
            resiliency: 1.0 / 3.0,
            complexity_units_of_n: 1.0,
            storage_items: (m * m) as f64 / n as f64 + c as f64,
            round_failure: failure::cycledger_round_failure(m, c, lambda),
            decentralization: "no always-honest party",
            efficient_with_dishonest_leaders: true,
            incentives: true,
            connection_channels: cycledger_channels(params, referee_size),
            connection_burden: "light",
        },
    }
}

/// Builds all four Table I rows for one parameter set.
pub fn build_table1(params: &ComparisonParams) -> Vec<ProtocolProfile> {
    Protocol::ALL.iter().map(|&p| profile(p, params)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_match_paper_qualitative_claims() {
        let rows = build_table1(&ComparisonParams::paper_default());
        assert_eq!(rows.len(), 4);
        let get = |p: Protocol| rows.iter().find(|r| r.protocol == p).unwrap();
        // Resiliency: Elastico/OmniLedger 1/4, RapidChain/CycLedger 1/3.
        assert_eq!(get(Protocol::Elastico).resiliency, 0.25);
        assert!((get(Protocol::CycLedger).resiliency - 1.0 / 3.0).abs() < 1e-12);
        // Only CycLedger is efficient with dishonest leaders and has incentives.
        for p in [
            Protocol::Elastico,
            Protocol::OmniLedger,
            Protocol::RapidChain,
        ] {
            assert!(!get(p).efficient_with_dishonest_leaders);
            assert!(!get(p).incentives);
            assert_eq!(get(p).connection_burden, "heavy");
        }
        assert!(get(Protocol::CycLedger).efficient_with_dishonest_leaders);
        assert!(get(Protocol::CycLedger).incentives);
        assert_eq!(get(Protocol::CycLedger).connection_burden, "light");
        // Decentralization strings match the paper's table.
        assert_eq!(
            get(Protocol::OmniLedger).decentralization,
            "an honest client"
        );
        assert_eq!(
            get(Protocol::RapidChain).decentralization,
            "an honest reference committee"
        );
    }

    #[test]
    fn storage_ordering_matches_table1() {
        let params = ComparisonParams::paper_default();
        let rows = build_table1(&params);
        let get = |p: Protocol| rows.iter().find(|r| r.protocol == p).unwrap().storage_items;
        // Elastico stores the whole state (O(n)); the others are committee-local.
        assert!(get(Protocol::Elastico) > get(Protocol::OmniLedger));
        assert!(get(Protocol::Elastico) > get(Protocol::CycLedger));
        // CycLedger is within a small constant of RapidChain's O(c).
        assert!(get(Protocol::CycLedger) < 1.5 * get(Protocol::RapidChain));
    }

    #[test]
    fn cycledger_needs_far_fewer_channels() {
        let params = ComparisonParams::paper_default();
        let rows = build_table1(&params);
        let cyc = rows
            .iter()
            .find(|r| r.protocol == Protocol::CycLedger)
            .unwrap();
        let rapid = rows
            .iter()
            .find(|r| r.protocol == Protocol::RapidChain)
            .unwrap();
        assert!(
            (cyc.connection_channels as f64) < 0.5 * rapid.connection_channels as f64,
            "CycLedger {} vs clique {}",
            cyc.connection_channels,
            rapid.connection_channels
        );
    }

    #[test]
    fn failure_probabilities_favor_one_third_protocols() {
        let params = ComparisonParams {
            n: 2000,
            m: 10,
            c: 200,
            lambda: 40,
        };
        let rows = build_table1(&params);
        let get = |p: Protocol| rows.iter().find(|r| r.protocol == p).unwrap().round_failure;
        assert!(get(Protocol::CycLedger) < get(Protocol::Elastico));
        assert!(get(Protocol::RapidChain) < get(Protocol::Elastico));
        assert!(get(Protocol::CycLedger) <= 1.0);
    }

    #[test]
    fn protocol_names_are_distinct() {
        let names: std::collections::HashSet<_> = Protocol::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
