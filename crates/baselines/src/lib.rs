//! # cycledger-baselines
//!
//! Comparison models for the protocols in Table I:
//!
//! * [`profiles`] — per-protocol rows (resiliency, complexity, storage, failure
//!   probability, decentralization assumption, dishonest-leader efficiency,
//!   incentives, connection burden).
//! * [`leader_model`] — throughput under dishonest leaders with and without
//!   CycLedger's recovery procedure (the motivation experiment of §I).

#![warn(missing_docs)]

pub mod leader_model;
pub mod profiles;

pub use leader_model::{
    cross_shard_completion_fraction, expected_throughput_fraction, recovery_comparison_series,
};
pub use profiles::{
    build_table1, cycledger_channels, profile, ComparisonParams, Protocol, ProtocolProfile,
};
