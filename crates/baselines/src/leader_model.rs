//! Throughput under dishonest leaders: CycLedger's recovery vs. prior protocols.
//!
//! Table I's "High Efficiency w.r.t. Dishonest Leaders" row and §I's motivation
//! ("in expectation, a proportion of 1/3 leaders are malicious in a round; under
//! this condition cross-shard transactions may hardly be included in a block")
//! compare two designs:
//!
//! * **No recovery** (Elastico/OmniLedger/RapidChain model): a committee whose
//!   leader misbehaves contributes nothing this round.
//! * **Recovery** (CycLedger): the partial set detects the faulty leader, a new
//!   leader is installed, and the committee still contributes (at the cost of
//!   one extra intra-committee consensus and a `2Γ` delay).
//!
//! This analytic model is cross-checked against the full simulator by the
//! `recovery_overhead` bench and the adversarial-leaders example.

/// Expected fraction of per-round throughput retained when a fraction
/// `malicious_leader_fraction` of committees has a faulty leader.
///
/// * Without recovery the committee's transactions are lost for the round.
/// * With recovery the committee still delivers, but its share is discounted by
///   `recovery_discount` (extra latency eats into the fixed round time `T`).
pub fn expected_throughput_fraction(
    malicious_leader_fraction: f64,
    recovery: bool,
    recovery_discount: f64,
) -> f64 {
    assert!((0.0..=1.0).contains(&malicious_leader_fraction));
    assert!((0.0..=1.0).contains(&recovery_discount));
    if recovery {
        (1.0 - malicious_leader_fraction) + malicious_leader_fraction * (1.0 - recovery_discount)
    } else {
        1.0 - malicious_leader_fraction
    }
}

/// Expected fraction of *cross-shard* transactions that complete in a round.
///
/// A cross-shard transaction needs both its input and output committee leader
/// to function. Without recovery both must be honest; with recovery the
/// transaction completes regardless (the partial set forwards), discounted by
/// the timeout penalty on each faulty side.
pub fn cross_shard_completion_fraction(
    malicious_leader_fraction: f64,
    recovery: bool,
    recovery_discount: f64,
) -> f64 {
    let p = malicious_leader_fraction;
    let honest_both = (1.0 - p) * (1.0 - p);
    if !recovery {
        return honest_both;
    }
    // With recovery every pair completes, but each faulty endpoint costs the
    // discount once.
    let one_faulty = 2.0 * p * (1.0 - p);
    let both_faulty = p * p;
    honest_both
        + one_faulty * (1.0 - recovery_discount)
        + both_faulty * (1.0 - recovery_discount).powi(2)
}

/// Sweeps leader-corruption fractions and returns `(fraction, without, with)`
/// triples, i.e. the series behind the recovery-overhead experiment.
pub fn recovery_comparison_series(
    points: usize,
    max_fraction: f64,
    recovery_discount: f64,
) -> Vec<(f64, f64, f64)> {
    assert!(points >= 2);
    (0..points)
        .map(|i| {
            let f = max_fraction * i as f64 / (points - 1) as f64;
            (
                f,
                expected_throughput_fraction(f, false, recovery_discount),
                expected_throughput_fraction(f, true, recovery_discount),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_leaders_lose_nothing() {
        assert_eq!(expected_throughput_fraction(0.0, false, 0.1), 1.0);
        assert_eq!(expected_throughput_fraction(0.0, true, 0.1), 1.0);
        assert_eq!(cross_shard_completion_fraction(0.0, false, 0.1), 1.0);
    }

    #[test]
    fn one_third_malicious_leaders_matches_paper_motivation() {
        // Without recovery, a third of the committees stall: ~67% throughput and
        // only ~44% of cross-shard transactions complete.
        let without = expected_throughput_fraction(1.0 / 3.0, false, 0.1);
        assert!((without - 2.0 / 3.0).abs() < 1e-9);
        let cross_without = cross_shard_completion_fraction(1.0 / 3.0, false, 0.1);
        assert!((cross_without - 4.0 / 9.0).abs() < 1e-9);
        // With recovery, CycLedger retains >95% throughput at a 10% discount.
        let with = expected_throughput_fraction(1.0 / 3.0, true, 0.1);
        assert!(with > 0.95);
        let cross_with = cross_shard_completion_fraction(1.0 / 3.0, true, 0.1);
        assert!(cross_with > 0.9);
    }

    #[test]
    fn recovery_always_dominates_no_recovery() {
        for i in 0..=10 {
            let f = i as f64 / 20.0;
            for d in [0.0, 0.1, 0.3] {
                assert!(
                    expected_throughput_fraction(f, true, d)
                        >= expected_throughput_fraction(f, false, d) - 1e-12
                );
                assert!(
                    cross_shard_completion_fraction(f, true, d)
                        >= cross_shard_completion_fraction(f, false, d) - 1e-12
                );
            }
        }
    }

    #[test]
    fn series_shape() {
        let series = recovery_comparison_series(11, 0.5, 0.2);
        assert_eq!(series.len(), 11);
        assert_eq!(series[0].0, 0.0);
        assert!((series[10].0 - 0.5).abs() < 1e-12);
        // The gap between with/without recovery widens with the corruption rate.
        let gap_start = series[1].2 - series[1].1;
        let gap_end = series[10].2 - series[10].1;
        assert!(gap_end > gap_start);
    }

    #[test]
    #[should_panic]
    fn invalid_fraction_panics() {
        expected_throughput_fraction(1.5, true, 0.1);
    }
}
