//! Wire messages for the inside-committee consensus (Algorithm 3).
//!
//! Algorithm 3 is a three-step synchronous broadcast: the leader PROPOSEs
//! `(r, sn, H(M), M)`, members ECHO the digest (relaying the leader-signed
//! proposal so everyone can check the leader said the same thing to everyone),
//! and once a member has seen identical ECHOes from more than half the committee
//! it CONFIRMs back to the leader together with the echo signatures it collected.
//!
//! Every message is signed; signatures are what make leader equivocation
//! *provable* (a witness needs a leader-signed message, Claim 4) and what makes
//! a quorum certificate transferable to the referee committee.

use std::sync::Arc;

use cycledger_crypto::schnorr::{sign, verify, Keypair, PublicKey, SecretKey, Signature};
use cycledger_crypto::sha256::Digest;
use cycledger_net::topology::NodeId;

use crate::sigcache::SigCache;

/// Identifier of one consensus instance: the round number and the leader's
/// monotonically increasing sequence number (the paper's `(r, sn)` pair).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ConsensusId {
    /// Protocol round `r`.
    pub round: u64,
    /// Sequence number `sn`, unique per leader per round.
    pub seq: u64,
}

impl ConsensusId {
    fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.round.to_be_bytes());
        out[8..].copy_from_slice(&self.seq.to_be_bytes());
        out
    }
}

/// The leader's PROPOSE message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Propose {
    /// Consensus instance.
    pub id: ConsensusId,
    /// Digest `H(M)` of the proposed payload.
    pub digest: Digest,
    /// The payload `M` itself. Shared behind an `Arc`: the leader multicasts
    /// the same proposal to every member, so per-recipient clones must not
    /// copy the payload bytes.
    pub payload: Arc<Vec<u8>>,
    /// Leader who proposed.
    pub leader: NodeId,
    /// Leader's signature over `(PROPOSE, id, digest)`.
    pub signature: Signature,
}

/// A member's ECHO message (carries the leader-signed proposal header so that
/// receivers can verify leader origin without having heard the PROPOSE).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Echo {
    /// Consensus instance.
    pub id: ConsensusId,
    /// Digest being echoed.
    pub digest: Digest,
    /// The echoing member.
    pub member: NodeId,
    /// The member's signature over `(ECHO, id, digest, member)`.
    pub signature: Signature,
    /// The leader that issued the proposal this echo refers to.
    pub leader: NodeId,
    /// The leader's PROPOSE signature, relayed.
    pub propose_signature: Signature,
}

/// A member's CONFIRM message back to the leader, carrying the echo signatures
/// that justify it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Confirm {
    /// Consensus instance.
    pub id: ConsensusId,
    /// Digest being confirmed.
    pub digest: Digest,
    /// The confirming member.
    pub member: NodeId,
    /// The member's signature over `(CONFIRM, id, digest, member)`.
    pub signature: Signature,
    /// Echo signatures collected by this member: `(echoer, signature)`.
    pub echo_signatures: Vec<(NodeId, Signature)>,
}

/// All Algorithm 3 traffic, plus the abort notice honest members broadcast when
/// they catch the leader equivocating.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Alg3Message {
    /// Leader → members.
    Propose(Propose),
    /// Member → members.
    Echo(Echo),
    /// Member → leader.
    Confirm(Confirm),
}

impl Alg3Message {
    /// Approximate wire size in bytes (used for network accounting).
    pub fn wire_size(&self) -> u64 {
        match self {
            Alg3Message::Propose(p) => 16 + 32 + p.payload.len() as u64 + 96,
            Alg3Message::Echo(_) => 16 + 32 + 4 + 96 + 96,
            Alg3Message::Confirm(c) => 16 + 32 + 4 + 96 + c.echo_signatures.len() as u64 * (4 + 96),
        }
    }
}

/// Signing payload for a PROPOSE.
pub fn propose_signing_bytes(id: &ConsensusId, digest: &Digest) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(b"cycledger/alg3-propose");
    out.extend_from_slice(&id.encode());
    out.extend_from_slice(digest.as_bytes());
    out
}

/// Signing payload for an ECHO.
pub fn echo_signing_bytes(id: &ConsensusId, digest: &Digest, member: NodeId) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(b"cycledger/alg3-echo");
    out.extend_from_slice(&id.encode());
    out.extend_from_slice(digest.as_bytes());
    out.extend_from_slice(&member.0.to_be_bytes());
    out
}

/// Signing payload for a CONFIRM.
pub fn confirm_signing_bytes(id: &ConsensusId, digest: &Digest, member: NodeId) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(b"cycledger/alg3-confirm");
    out.extend_from_slice(&id.encode());
    out.extend_from_slice(digest.as_bytes());
    out.extend_from_slice(&member.0.to_be_bytes());
    out
}

/// A fixed, precomputed signature used when the simulation fast path skips
/// signature generation (see [`make_propose_unsigned`]). Deterministic, so
/// runs with signing disabled stay byte-identical across worker counts.
pub fn placeholder_signature() -> Signature {
    static PLACEHOLDER: std::sync::OnceLock<Signature> = std::sync::OnceLock::new();
    *PLACEHOLDER.get_or_init(|| {
        let key = SecretKey::from_seed(b"cycledger/alg3-placeholder");
        sign(&key, b"cycledger/alg3-placeholder-signature")
    })
}

/// Builds a signed PROPOSE for a payload.
pub fn make_propose(
    id: ConsensusId,
    payload: Vec<u8>,
    leader: NodeId,
    leader_key: &Keypair,
) -> Propose {
    let digest = cycledger_crypto::sha256::hash_parts(&[b"cycledger/alg3-payload", &payload]);
    let signature = leader_key.sign(&propose_signing_bytes(&id, &digest));
    Propose {
        id,
        digest,
        payload: Arc::new(payload),
        leader,
        signature,
    }
}

/// Builds a PROPOSE carrying a placeholder signature.
///
/// **Simulation fast path**: when signature verification is disabled for a
/// run, nothing ever checks the Schnorr signatures, yet producing them
/// dominated wall-clock time (one curve multiplication per message). The
/// payload digest — which drives echo matching and equivocation detection —
/// is still computed exactly as in [`make_propose`], and message sizes are
/// accounted identically, so protocol decisions and metrics are unchanged.
pub fn make_propose_unsigned(id: ConsensusId, payload: Vec<u8>, leader: NodeId) -> Propose {
    let digest = cycledger_crypto::sha256::hash_parts(&[b"cycledger/alg3-payload", &payload]);
    Propose {
        id,
        digest,
        payload: Arc::new(payload),
        leader,
        signature: placeholder_signature(),
    }
}

/// Digest of a payload, as computed by [`make_propose`]; members recompute it
/// to check the leader's claimed digest.
pub fn payload_digest(payload: &[u8]) -> Digest {
    cycledger_crypto::sha256::hash_parts(&[b"cycledger/alg3-payload", payload])
}

/// Verifies a PROPOSE's signature and digest against the leader's public key.
pub fn verify_propose(propose: &Propose, leader_pk: &PublicKey) -> bool {
    propose.digest == payload_digest(&propose.payload)
        && verify(
            leader_pk,
            &propose_signing_bytes(&propose.id, &propose.digest),
            &propose.signature,
        )
}

/// [`verify_propose`] with the Schnorr check memoized in `cache`.
///
/// The leader multicasts one proposal to the whole committee, so every member
/// checks the *same* `(leader key, header, signature)` triple; the shared memo
/// collapses those to a single curve evaluation. The digest/payload
/// consistency check still runs per call.
pub fn verify_propose_cached(propose: &Propose, leader_pk: &PublicKey, cache: &SigCache) -> bool {
    propose.digest == payload_digest(&propose.payload)
        && cache.verify(
            leader_pk,
            &propose_signing_bytes(&propose.id, &propose.digest),
            &propose.signature,
        )
}

/// Builds a signed ECHO relaying the leader's signature.
pub fn make_echo(propose: &Propose, member: NodeId, member_key: &Keypair) -> Echo {
    let signature = member_key.sign(&echo_signing_bytes(&propose.id, &propose.digest, member));
    Echo {
        id: propose.id,
        digest: propose.digest,
        member,
        signature,
        leader: propose.leader,
        propose_signature: propose.signature,
    }
}

/// Builds an ECHO with a placeholder member signature (simulation fast path;
/// see [`make_propose_unsigned`]). The relayed leader signature is still
/// copied from the proposal so equivocation evidence keeps its shape.
pub fn make_echo_unsigned(propose: &Propose, member: NodeId) -> Echo {
    Echo {
        id: propose.id,
        digest: propose.digest,
        member,
        signature: placeholder_signature(),
        leader: propose.leader,
        propose_signature: propose.signature,
    }
}

/// Verifies an ECHO: the member's own signature and the relayed leader signature.
pub fn verify_echo(echo: &Echo, member_pk: &PublicKey, leader_pk: &PublicKey) -> bool {
    verify(
        member_pk,
        &echo_signing_bytes(&echo.id, &echo.digest, echo.member),
        &echo.signature,
    ) && verify(
        leader_pk,
        &propose_signing_bytes(&echo.id, &echo.digest),
        &echo.propose_signature,
    )
}

/// [`verify_echo`] with both Schnorr checks memoized in `cache`.
///
/// An echo is broadcast to all other members, and its relayed leader
/// signature is the same triple every propose check already memoized — with a
/// shared cache a committee of `C` members performs `C` member-signature
/// checks and one leader check instead of `O(C²)`.
pub fn verify_echo_cached(
    echo: &Echo,
    member_pk: &PublicKey,
    leader_pk: &PublicKey,
    cache: &SigCache,
) -> bool {
    cache.verify(
        member_pk,
        &echo_signing_bytes(&echo.id, &echo.digest, echo.member),
        &echo.signature,
    ) && cache.verify(
        leader_pk,
        &propose_signing_bytes(&echo.id, &echo.digest),
        &echo.propose_signature,
    )
}

/// Builds a signed CONFIRM carrying the collected echo signatures.
pub fn make_confirm(
    id: ConsensusId,
    digest: Digest,
    member: NodeId,
    member_key: &Keypair,
    echo_signatures: Vec<(NodeId, Signature)>,
) -> Confirm {
    let signature = member_key.sign(&confirm_signing_bytes(&id, &digest, member));
    Confirm {
        id,
        digest,
        member,
        signature,
        echo_signatures,
    }
}

/// Builds a CONFIRM with a placeholder signature (simulation fast path; see
/// [`make_propose_unsigned`]).
pub fn make_confirm_unsigned(
    id: ConsensusId,
    digest: Digest,
    member: NodeId,
    echo_signatures: Vec<(NodeId, Signature)>,
) -> Confirm {
    Confirm {
        id,
        digest,
        member,
        signature: placeholder_signature(),
        echo_signatures,
    }
}

/// Verifies a CONFIRM's own signature (echo signatures are verified by the
/// quorum-certificate logic, which knows everyone's keys).
pub fn verify_confirm(confirm: &Confirm, member_pk: &PublicKey) -> bool {
    verify(
        member_pk,
        &confirm_signing_bytes(&confirm.id, &confirm.digest, confirm.member),
        &confirm.signature,
    )
}

/// [`verify_confirm`] with the Schnorr check memoized in `cache`.
pub fn verify_confirm_cached(confirm: &Confirm, member_pk: &PublicKey, cache: &SigCache) -> bool {
    cache.verify(
        member_pk,
        &confirm_signing_bytes(&confirm.id, &confirm.digest, confirm.member),
        &confirm.signature,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycledger_crypto::schnorr::Keypair;

    fn id() -> ConsensusId {
        ConsensusId { round: 3, seq: 11 }
    }

    #[test]
    fn propose_round_trip() {
        let leader = Keypair::from_seed(b"leader");
        let p = make_propose(id(), b"payload".to_vec(), NodeId(0), &leader);
        assert!(verify_propose(&p, &leader.public));
        assert_eq!(p.digest, payload_digest(b"payload"));
    }

    #[test]
    fn propose_with_wrong_digest_rejected() {
        let leader = Keypair::from_seed(b"leader");
        let mut p = make_propose(id(), b"payload".to_vec(), NodeId(0), &leader);
        p.payload = Arc::new(b"swapped".to_vec());
        assert!(!verify_propose(&p, &leader.public));
    }

    #[test]
    fn propose_from_wrong_key_rejected() {
        let leader = Keypair::from_seed(b"leader");
        let impostor = Keypair::from_seed(b"impostor");
        let p = make_propose(id(), b"payload".to_vec(), NodeId(0), &impostor);
        assert!(!verify_propose(&p, &leader.public));
    }

    #[test]
    fn echo_round_trip_and_relay_check() {
        let leader = Keypair::from_seed(b"leader");
        let member = Keypair::from_seed(b"member");
        let p = make_propose(id(), b"payload".to_vec(), NodeId(0), &leader);
        let e = make_echo(&p, NodeId(5), &member);
        assert!(verify_echo(&e, &member.public, &leader.public));
        // An echo whose relayed leader signature is forged fails.
        let impostor = Keypair::from_seed(b"impostor");
        let forged_propose = make_propose(id(), b"payload".to_vec(), NodeId(0), &impostor);
        let bad = make_echo(&forged_propose, NodeId(5), &member);
        assert!(!verify_echo(&bad, &member.public, &leader.public));
    }

    #[test]
    fn confirm_round_trip() {
        let member = Keypair::from_seed(b"member");
        let c = make_confirm(id(), payload_digest(b"x"), NodeId(7), &member, vec![]);
        assert!(verify_confirm(&c, &member.public));
        let other = Keypair::from_seed(b"other");
        assert!(!verify_confirm(&c, &other.public));
    }

    #[test]
    fn cached_verifiers_agree_with_direct_ones() {
        let leader = Keypair::from_seed(b"leader");
        let member = Keypair::from_seed(b"member");
        let impostor = Keypair::from_seed(b"impostor");
        let cache = SigCache::new();
        let p = make_propose(id(), b"payload".to_vec(), NodeId(0), &leader);
        let e = make_echo(&p, NodeId(5), &member);
        let c = make_confirm(id(), p.digest, NodeId(5), &member, vec![]);
        for _ in 0..2 {
            assert!(verify_propose_cached(&p, &leader.public, &cache));
            assert!(!verify_propose_cached(&p, &impostor.public, &cache));
            assert!(verify_echo_cached(
                &e,
                &member.public,
                &leader.public,
                &cache
            ));
            assert!(!verify_echo_cached(
                &e,
                &impostor.public,
                &leader.public,
                &cache
            ));
            assert!(verify_confirm_cached(&c, &member.public, &cache));
            assert!(!verify_confirm_cached(&c, &impostor.public, &cache));
        }
        // The echo's relayed leader signature shares the propose memo entry:
        // 1 good propose + 1 bad propose + 1 good echo member sig + 1 bad echo
        // member sig + 1 good confirm + 1 bad confirm = 6 distinct triples.
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn signing_payloads_are_domain_separated() {
        let d = payload_digest(b"x");
        let i = id();
        let a = propose_signing_bytes(&i, &d);
        let b = echo_signing_bytes(&i, &d, NodeId(1));
        let c = confirm_signing_bytes(&i, &d, NodeId(1));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn wire_sizes_are_positive_and_grow_with_content() {
        let leader = Keypair::from_seed(b"leader");
        let member = Keypair::from_seed(b"member");
        let p = make_propose(id(), vec![0u8; 100], NodeId(0), &leader);
        let e = make_echo(&p, NodeId(1), &member);
        let c_small = make_confirm(id(), p.digest, NodeId(1), &member, vec![]);
        let c_big = make_confirm(
            id(),
            p.digest,
            NodeId(1),
            &member,
            vec![(NodeId(2), e.signature), (NodeId(3), e.signature)],
        );
        assert!(Alg3Message::Propose(p).wire_size() > 100);
        assert!(
            Alg3Message::Confirm(c_big.clone()).wire_size()
                > Alg3Message::Confirm(c_small).wire_size()
        );
        assert!(Alg3Message::Echo(e).wire_size() > 0);
        let _ = c_big;
    }
}
