//! # cycledger-consensus
//!
//! The intra-committee consensus machinery of CycLedger:
//!
//! * [`messages`] — signed PROPOSE / ECHO / CONFIRM messages of Algorithm 3.
//! * [`envelope`] — typed committee-traffic envelopes ([`CommitteeMessage`])
//!   for the message-driven data plane, where votes, list forwards and
//!   recovery accusations travel through the discrete-event network.
//! * [`alg3`] — per-node state machines for Algorithm 3, including equivocation
//!   detection from conflicting leader-signed proposals.
//! * [`quorum`] — transferable quorum certificates ("SigList") and their
//!   verification against a committee key directory.
//! * [`sigcache`] — per-instance memoization of signature verification, so the
//!   simulator pays each distinct `(key, message, signature)` check once
//!   instead of once per receiving member.
//! * [`transition`] — the single side-effect-free decision core (thresholds,
//!   tallies, impeachment rules) shared by the production drivers and the
//!   `cycledger-checker` model checker.
//! * [`votes`] — `TXList` voting, `V List` assembly, and the `TXdecSET` tally
//!   (Algorithm 5).
//! * [`witness`] — leader-misbehaviour witnesses (equivocation, semi-commitment
//!   mismatch) that feed the recovery procedure (Algorithm 6, Claims 3 & 4).
//!
//! Everything here is transport-agnostic; the `cycledger-protocol` crate drives
//! these state machines over the simulated network.

#![warn(missing_docs)]

pub mod alg3;
pub mod envelope;
pub mod messages;
pub mod quorum;
pub mod sigcache;
pub mod transition;
pub mod votes;
pub mod witness;

pub use alg3::{LeaderState, MemberAction, MemberState};
pub use envelope::{CarriesAlg3, CommitteeMessage};
pub use messages::{Alg3Message, Confirm, ConsensusId, Echo, Propose};
pub use quorum::{verify_certs_batch, CommitteeKeys, QuorumCertificate, QuorumError};
pub use sigcache::SigCache;
pub use votes::{Tally, Vote, VoteList, VoteVector};
pub use witness::{
    member_list_signing_bytes, semi_commitment, CommitmentMismatchEvidence, EquivocationEvidence,
    Witness,
};
