//! The single, side-effect-free decision core of the consensus protocol.
//!
//! Every quantitative rule the protocol applies — quorum thresholds
//! (Algorithm 3), the strict-majority `TXdecSET` tally (Algorithm 5), the
//! quorum-timeout fallback's missing-vote arithmetic (§IV-C step 4), and the
//! impeachment admissibility/approval rules of the recovery procedure
//! (Algorithm 6, Claims 3 & 4) — is a pure function in this module.
//!
//! The production drivers ([`crate::alg3`], [`crate::votes`],
//! [`crate::quorum`], and the `cycledger-protocol` phase drivers) call these
//! functions on their live state, and the `cycledger-checker` model checker
//! calls the *same* functions on its abstract state. That sharing is the
//! point: the checker's exhaustive verdicts bind the real code because there
//! is exactly one copy of each rule — a divergence between model and
//! implementation can only live in *plumbing* (message routing, deadlines),
//! which the checker's refinement layer covers separately by replaying
//! concrete traces through these functions.
//!
//! Nothing here allocates, reads clocks, or touches the network; every
//! function is total over its inputs.

use cycledger_crypto::sha256::Digest;

/// The majority threshold `⌊C/2⌋ + 1` used throughout Algorithm 3 and the
/// recovery vote (Algorithm 6): the smallest count that is a strict majority
/// of a committee of `committee_size`.
pub const fn majority_threshold(committee_size: usize) -> usize {
    committee_size / 2 + 1
}

/// True once a member has identical echoes from a strict majority of the
/// committee — the condition under which it CONFIRMs (Algorithm 3, member
/// side). `echoes` counts distinct members, including the member's own echo.
pub const fn echo_quorum(echoes: usize, committee_size: usize) -> bool {
    echoes >= majority_threshold(committee_size)
}

/// True once the leader holds CONFIRMs from a strict majority of the
/// committee — the condition under which Algorithm 3 terminates with a
/// [`QuorumCertificate`](crate::quorum::QuorumCertificate). `confirms`
/// counts distinct members.
pub const fn confirm_quorum(confirms: usize, committee_size: usize) -> bool {
    confirms >= majority_threshold(committee_size)
}

/// True iff a transaction enters `TXdecSET`: strictly more than half of the
/// committee voted `Yes` (Algorithm 5, line 14). Exactly half is *not* a
/// majority; `Unknown` votes (including every backfilled all-`Unknown` row)
/// count toward nothing.
pub const fn tx_accepted(yes_votes: usize, committee_size: usize) -> bool {
    yes_votes * 2 > committee_size
}

/// How many votes the quorum-timeout fallback must backfill as all-`Unknown`
/// rows: the committee members whose replies had not arrived when the
/// deadline fired. Saturating, so a spurious extra reply can never produce a
/// negative count.
pub const fn expected_votes_missing(committee_size: usize, votes_received: usize) -> usize {
    committee_size.saturating_sub(votes_received)
}

/// True iff the vote collection took the quorum-timeout fallback path: the
/// deadline fired with at least one vote still missing (§IV-C step 4).
pub const fn quorum_timed_out(votes_missing: usize) -> bool {
    votes_missing > 0
}

/// True iff two leader-signed digests for the same consensus instance
/// constitute equivocation: the digests differ. (Signature validity is the
/// caller's concern — see [`crate::witness::EquivocationEvidence::verify`].)
pub fn digests_conflict(a: &Digest, b: &Digest) -> bool {
    a != b
}

/// Admissibility of a *signed* accusation (equivocation / commitment
/// mismatch): the accused must currently hold the leader seat and the
/// witness must check out. `witness_verifies` is the outcome of the
/// cryptographic check — or `true` on the simulation fast path, whose
/// contract guarantees witnesses only ever originate from real misbehaviour.
pub const fn signed_accusation_admissible(accused_is_leader: bool, witness_verifies: bool) -> bool {
    accused_is_leader && witness_verifies
}

/// Admissibility of a *timeout* accusation (silent or censoring leader):
/// honest members approve only omissions they observed themselves — a
/// fabricated complaint against a live leader finds no honest support
/// (Claim 3).
pub const fn timeout_accusation_admissible(
    accused_is_leader: bool,
    observed_by_committee: bool,
) -> bool {
    accused_is_leader && observed_by_committee
}

/// Whether one member approves an impeachment: honest members approve
/// exactly the accusations whose evidence is valid; malicious members
/// approve anything (the worst case for a framed leader — but they are a
/// minority, so their approvals never carry a vote alone, Claim 4).
pub const fn member_approves_impeachment(member_is_honest: bool, evidence_valid: bool) -> bool {
    !member_is_honest || evidence_valid
}

/// True iff an impeachment carries: approvals from a strict majority of the
/// committee (the same threshold as Algorithm 3's quorums).
pub const fn impeachment_passes(approvals: usize, committee_size: usize) -> bool {
    approvals >= majority_threshold(committee_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycledger_crypto::sha256::sha256;

    #[test]
    fn majority_threshold_is_strict_majority() {
        for size in 1..=33usize {
            let t = majority_threshold(size);
            assert!(
                t * 2 > size,
                "threshold {t} must be a strict majority of {size}"
            );
            assert!(
                (t - 1) * 2 <= size,
                "threshold {t} must be minimal for {size}"
            );
        }
        // The checker's tiny config, spelled out: n = 4 needs 3, not 2.
        assert_eq!(majority_threshold(4), 3);
    }

    #[test]
    fn quorum_edges_at_n4() {
        assert!(!echo_quorum(2, 4));
        assert!(echo_quorum(3, 4));
        assert!(!confirm_quorum(2, 4));
        assert!(confirm_quorum(3, 4));
        assert!(!impeachment_passes(2, 4));
        assert!(impeachment_passes(3, 4));
    }

    #[test]
    fn exactly_half_yes_is_rejected() {
        assert!(!tx_accepted(2, 4));
        assert!(tx_accepted(3, 4));
        assert!(!tx_accepted(0, 0));
        assert!(!tx_accepted(4, 8));
        assert!(tx_accepted(5, 8));
    }

    #[test]
    fn missing_votes_arithmetic() {
        assert_eq!(expected_votes_missing(8, 8), 0);
        assert_eq!(expected_votes_missing(8, 3), 5);
        assert_eq!(expected_votes_missing(8, 9), 0, "saturates");
        assert!(!quorum_timed_out(0));
        assert!(quorum_timed_out(1));
    }

    #[test]
    fn equivocation_requires_distinct_digests() {
        let a = sha256(b"list A");
        let b = sha256(b"list B");
        assert!(digests_conflict(&a, &b));
        assert!(!digests_conflict(&a, &a));
    }

    #[test]
    fn accusation_admissibility() {
        assert!(signed_accusation_admissible(true, true));
        assert!(!signed_accusation_admissible(false, true));
        assert!(!signed_accusation_admissible(true, false));
        assert!(timeout_accusation_admissible(true, true));
        assert!(!timeout_accusation_admissible(true, false));
        assert!(!timeout_accusation_admissible(false, true));
    }

    #[test]
    fn approval_rules() {
        assert!(member_approves_impeachment(true, true));
        assert!(!member_approves_impeachment(true, false));
        assert!(member_approves_impeachment(false, true));
        assert!(
            member_approves_impeachment(false, false),
            "malicious approve anything"
        );
    }
}
