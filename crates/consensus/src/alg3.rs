//! Per-node state machines for Algorithm 3 ("Inside-committee Consensus").
//!
//! The leader PROPOSEs a payload; every member ECHOes the digest and relays the
//! leader-signed proposal; once a member has identical ECHOes from more than half
//! of the committee (plus the leader's PROPOSE) it CONFIRMs back to the leader
//! with the echo signatures attached; the leader terminates with a
//! [`QuorumCertificate`] once more than half of the committee has CONFIRMed.
//!
//! The state machines are transport-agnostic: they consume verified-or-rejected
//! messages and emit actions (messages to send, or misbehaviour evidence). The
//! protocol crate drives them over the simulated network, which is where
//! latency, phases, and adversarial scheduling come in.

use std::collections::BTreeMap;

use cycledger_crypto::schnorr::{Keypair, Signature};
use cycledger_crypto::sha256::Digest;
use cycledger_net::topology::NodeId;

use crate::messages::{
    make_confirm, make_confirm_unsigned, make_echo, make_echo_unsigned, verify_confirm_cached,
    verify_echo_cached, verify_propose_cached, Confirm, ConsensusId, Echo, Propose,
};
use crate::quorum::{CommitteeKeys, QuorumCertificate};
use crate::sigcache::SigCache;
use crate::witness::EquivocationEvidence;

/// Actions a member state machine asks its driver to perform.
#[derive(Clone, Debug)]
pub enum MemberAction {
    /// Broadcast this ECHO to the whole committee.
    BroadcastEcho(Echo),
    /// Send this CONFIRM to the leader.
    SendConfirm(Confirm),
    /// The leader equivocated; stop the instance and report to the partial set.
    ReportEquivocation(EquivocationEvidence),
}

/// A committee member's view of one Algorithm 3 instance.
#[derive(Clone, Debug)]
pub struct MemberState {
    me: NodeId,
    keypair: Keypair,
    leader: NodeId,
    id: ConsensusId,
    keys: CommitteeKeys,
    /// The first valid leader proposal we accepted: `(digest, leader signature)`.
    accepted: Option<(Digest, Signature)>,
    /// Payload of the accepted proposal (shared with the proposal itself).
    payload: Option<std::sync::Arc<Vec<u8>>>,
    /// Echo signatures collected for the accepted digest.
    echoes: BTreeMap<NodeId, Signature>,
    confirmed: bool,
    halted: bool,
    verify_signatures: bool,
    sig_cache: SigCache,
}

impl MemberState {
    /// Creates the member-side state for one consensus instance.
    pub fn new(
        me: NodeId,
        keypair: Keypair,
        leader: NodeId,
        id: ConsensusId,
        keys: CommitteeKeys,
    ) -> Self {
        MemberState {
            me,
            keypair,
            leader,
            id,
            keys,
            accepted: None,
            payload: None,
            echoes: BTreeMap::new(),
            confirmed: false,
            halted: false,
            verify_signatures: true,
            sig_cache: SigCache::default(),
        }
    }

    /// Shares a verification memo with the other state machines of this
    /// instance (see [`SigCache`]): the same `(key, message, signature)`
    /// triple — e.g. the leader's multicast PROPOSE signature — is then
    /// checked once for the whole committee instead of once per receiver.
    pub fn set_sig_cache(&mut self, cache: SigCache) {
        self.sig_cache = cache;
    }

    /// Disables cryptographic verification of incoming messages **and**
    /// generation of this member's own signatures (placeholder signatures are
    /// attached instead, keeping message shapes and wire sizes identical).
    ///
    /// This is a *simulation fast path*: in the simulator, honest nodes only ever
    /// emit messages they could legitimately sign, so skipping verification does
    /// not change any protocol outcome — it only removes the O(c²) signature
    /// checks per instance *and* the O(c) signing multiplications that dominate
    /// wall-clock time at large committee sizes. Large-scale benches enable it;
    /// tests and examples keep full verification on.
    pub fn set_verify_signatures(&mut self, verify: bool) {
        self.verify_signatures = verify;
    }

    /// Echo for an accepted proposal: real signature when verification is on,
    /// placeholder on the fast path (nothing will check it).
    fn build_echo(&self, propose: &Propose) -> Echo {
        if self.verify_signatures {
            make_echo(propose, self.me, &self.keypair)
        } else {
            make_echo_unsigned(propose, self.me)
        }
    }

    /// True once the member has stopped participating (leader caught cheating).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The payload this member accepted (if any) — what it will treat as the
    /// committee's working data when the instance completes.
    pub fn accepted_payload(&self) -> Option<&[u8]> {
        self.payload.as_deref().map(|v| v.as_slice())
    }

    /// True once the member has sent its CONFIRM.
    pub fn has_confirmed(&self) -> bool {
        self.confirmed
    }

    /// Handles a PROPOSE from the leader.
    pub fn handle_propose(&mut self, propose: &Propose) -> Vec<MemberAction> {
        if self.halted || propose.id != self.id || propose.leader != self.leader {
            return Vec::new();
        }
        let Some(leader_pk) = self.keys.get(self.leader) else {
            return Vec::new();
        };
        if self.verify_signatures && !verify_propose_cached(propose, leader_pk, &self.sig_cache) {
            // Unsigned/garbled proposal: ignore (an invalid signature is not
            // evidence of anything — anyone could have forged it).
            return Vec::new();
        }
        match &self.accepted {
            None => {
                self.accepted = Some((propose.digest, propose.signature));
                self.payload = Some(propose.payload.clone());
                let echo = self.build_echo(propose);
                // A member counts its own echo.
                self.echoes.insert(self.me, echo.signature);
                let mut actions = vec![MemberAction::BroadcastEcho(echo)];
                actions.extend(self.maybe_confirm());
                actions
            }
            Some((digest, _)) if *digest == propose.digest && self.payload.is_none() => {
                // We adopted the digest earlier from a relayed echo (the network
                // delivered a peer's ECHO before the leader's PROPOSE); now that
                // the payload has arrived we can echo and, if the quorum of
                // echoes is already in, confirm.
                self.payload = Some(propose.payload.clone());
                let echo = self.build_echo(propose);
                self.echoes.insert(self.me, echo.signature);
                let mut actions = vec![MemberAction::BroadcastEcho(echo)];
                actions.extend(self.maybe_confirm());
                actions
            }
            Some((digest, sig)) if crate::transition::digests_conflict(digest, &propose.digest) => {
                // Two leader-signed digests for the same (r, sn): equivocation.
                self.halted = true;
                vec![MemberAction::ReportEquivocation(EquivocationEvidence {
                    id: self.id,
                    leader: self.leader,
                    digest_a: *digest,
                    sig_a: *sig,
                    digest_b: propose.digest,
                    sig_b: propose.signature,
                })]
            }
            Some(_) => Vec::new(), // duplicate of what we already accepted
        }
    }

    /// Handles an ECHO from another member.
    pub fn handle_echo(&mut self, echo: &Echo) -> Vec<MemberAction> {
        if self.halted || echo.id != self.id || echo.leader != self.leader {
            return Vec::new();
        }
        let (Some(member_pk), Some(leader_pk)) =
            (self.keys.get(echo.member), self.keys.get(self.leader))
        else {
            return Vec::new();
        };
        if self.verify_signatures
            && !verify_echo_cached(echo, member_pk, leader_pk, &self.sig_cache)
        {
            return Vec::new();
        }
        match &self.accepted {
            None => {
                // We have not heard the leader directly, but the echo relays a
                // valid leader-signed proposal header. Adopt the digest (we still
                // cannot confirm until we also hold the payload via PROPOSE, but
                // we can start counting echoes).
                self.accepted = Some((echo.digest, echo.propose_signature));
                self.echoes.insert(echo.member, echo.signature);
                Vec::new()
            }
            Some((digest, sig)) if crate::transition::digests_conflict(digest, &echo.digest) => {
                // The relayed leader signature proves the leader also signed a
                // different digest: equivocation caught via a peer's echo.
                self.halted = true;
                vec![MemberAction::ReportEquivocation(EquivocationEvidence {
                    id: self.id,
                    leader: self.leader,
                    digest_a: *digest,
                    sig_a: *sig,
                    digest_b: echo.digest,
                    sig_b: echo.propose_signature,
                })]
            }
            Some((digest, _)) => {
                debug_assert_eq!(digest, &echo.digest);
                self.echoes.insert(echo.member, echo.signature);
                self.maybe_confirm()
            }
        }
    }

    fn maybe_confirm(&mut self) -> Vec<MemberAction> {
        if self.confirmed || self.payload.is_none() {
            return Vec::new();
        }
        let Some((digest, _)) = self.accepted else {
            return Vec::new();
        };
        if crate::transition::echo_quorum(self.echoes.len(), self.keys.len()) {
            self.confirmed = true;
            let echo_signatures = self.echoes.iter().map(|(n, s)| (*n, *s)).collect();
            let confirm = if self.verify_signatures {
                make_confirm(self.id, digest, self.me, &self.keypair, echo_signatures)
            } else {
                make_confirm_unsigned(self.id, digest, self.me, echo_signatures)
            };
            return vec![MemberAction::SendConfirm(confirm)];
        }
        Vec::new()
    }
}

/// The leader's view of one Algorithm 3 instance: collecting CONFIRMs.
#[derive(Clone, Debug)]
pub struct LeaderState {
    id: ConsensusId,
    digest: Digest,
    keys: CommitteeKeys,
    confirms: BTreeMap<NodeId, Signature>,
    certificate: Option<QuorumCertificate>,
    verify_signatures: bool,
    sig_cache: SigCache,
}

impl LeaderState {
    /// Creates the leader-side state after the leader has built its proposal.
    pub fn new(id: ConsensusId, digest: Digest, keys: CommitteeKeys) -> Self {
        LeaderState {
            id,
            digest,
            keys,
            confirms: BTreeMap::new(),
            certificate: None,
            verify_signatures: true,
            sig_cache: SigCache::default(),
        }
    }

    /// Shares a verification memo with the members of this instance (see
    /// [`MemberState::set_sig_cache`]).
    pub fn set_sig_cache(&mut self, cache: SigCache) {
        self.sig_cache = cache;
    }

    /// Disables cryptographic verification of incoming CONFIRMs (see
    /// [`MemberState::set_verify_signatures`] for the rationale).
    pub fn set_verify_signatures(&mut self, verify: bool) {
        self.verify_signatures = verify;
    }

    /// Handles a CONFIRM from a member; returns the quorum certificate the first
    /// time the majority threshold is crossed.
    pub fn handle_confirm(&mut self, confirm: &Confirm) -> Option<QuorumCertificate> {
        if confirm.id != self.id || confirm.digest != self.digest {
            return None;
        }
        let member_pk = self.keys.get(confirm.member)?;
        if self.verify_signatures && !verify_confirm_cached(confirm, member_pk, &self.sig_cache) {
            return None;
        }
        self.confirms.insert(confirm.member, confirm.signature);
        if self.certificate.is_none()
            && crate::transition::confirm_quorum(self.confirms.len(), self.keys.len())
        {
            let certificate = QuorumCertificate {
                id: self.id,
                digest: self.digest,
                signatures: self.confirms.iter().map(|(n, s)| (*n, *s)).collect(),
            };
            self.certificate = Some(certificate.clone());
            return Some(certificate);
        }
        None
    }

    /// Number of valid CONFIRMs received so far.
    pub fn confirm_count(&self) -> usize {
        self.confirms.len()
    }

    /// The certificate, if the instance already completed.
    pub fn certificate(&self) -> Option<&QuorumCertificate> {
        self.certificate.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::make_propose;

    /// Builds a committee of `n` members; node 0 is the leader.
    fn committee(n: usize) -> (Vec<Keypair>, CommitteeKeys) {
        let keypairs: Vec<Keypair> = (0..n)
            .map(|i| Keypair::from_seed(format!("alg3-member-{i}").as_bytes()))
            .collect();
        let keys = CommitteeKeys::new(
            keypairs
                .iter()
                .enumerate()
                .map(|(i, kp)| (NodeId(i as u32), kp.public)),
        );
        (keypairs, keys)
    }

    /// Runs a full honest instance in-memory and returns the certificate.
    fn run_honest(n: usize, payload: &[u8]) -> (QuorumCertificate, Vec<MemberState>) {
        let (kps, keys) = committee(n);
        let id = ConsensusId { round: 1, seq: 1 };
        let leader_node = NodeId(0);
        let propose = make_propose(id, payload.to_vec(), leader_node, &kps[0]);
        let mut leader = LeaderState::new(id, propose.digest, keys.clone());
        let mut members: Vec<MemberState> = (0..n)
            .map(|i| MemberState::new(NodeId(i as u32), kps[i], leader_node, id, keys.clone()))
            .collect();

        // Step 1: PROPOSE delivered to everyone; collect echoes.
        let mut echoes = Vec::new();
        for member in members.iter_mut() {
            for action in member.handle_propose(&propose) {
                if let MemberAction::BroadcastEcho(e) = action {
                    echoes.push(e);
                }
            }
        }
        // Step 2: deliver every echo to every member; collect confirms.
        let mut confirms = Vec::new();
        for member in members.iter_mut() {
            for echo in &echoes {
                if echo.member == member.me {
                    continue;
                }
                for action in member.handle_echo(echo) {
                    if let MemberAction::SendConfirm(c) = action {
                        confirms.push(c);
                    }
                }
            }
        }
        // Step 3: leader collects confirms.
        let mut cert = None;
        for confirm in &confirms {
            if let Some(c) = leader.handle_confirm(confirm) {
                cert = Some(c);
            }
        }
        (
            cert.expect("honest run must produce a certificate"),
            members,
        )
    }

    #[test]
    fn honest_instance_reaches_quorum() {
        for n in [4usize, 5, 7, 10] {
            let (cert, members) = run_honest(n, b"TXdecSET payload");
            let (_, keys) = committee(n);
            assert_eq!(cert.verify_majority(&keys), Ok(()), "n = {n}");
            assert!(cert.signer_count() > n / 2);
            // Every member accepted the same payload.
            for m in &members {
                assert_eq!(m.accepted_payload(), Some(&b"TXdecSET payload"[..]));
                assert!(!m.is_halted());
            }
        }
    }

    #[test]
    fn equivocating_leader_is_caught_by_propose() {
        let (kps, keys) = committee(5);
        let id = ConsensusId { round: 1, seq: 1 };
        let p1 = make_propose(id, b"list A".to_vec(), NodeId(0), &kps[0]);
        let p2 = make_propose(id, b"list B".to_vec(), NodeId(0), &kps[0]);
        let mut member = MemberState::new(NodeId(1), kps[1], NodeId(0), id, keys.clone());
        assert_eq!(member.handle_propose(&p1).len(), 1);
        let actions = member.handle_propose(&p2);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            MemberAction::ReportEquivocation(ev) => {
                assert!(ev.verify(&kps[0].public), "evidence must be verifiable");
                assert_eq!(ev.leader, NodeId(0));
            }
            other => panic!("expected equivocation report, got {other:?}"),
        }
        assert!(member.is_halted());
        // A halted member ignores further traffic.
        assert!(member.handle_propose(&p1).is_empty());
    }

    #[test]
    fn equivocation_is_caught_via_relayed_echo() {
        // The leader tells member 1 "list A" and member 2 "list B"; member 1
        // catches the inconsistency when member 2's echo arrives.
        let (kps, keys) = committee(5);
        let id = ConsensusId { round: 2, seq: 3 };
        let p1 = make_propose(id, b"list A".to_vec(), NodeId(0), &kps[0]);
        let p2 = make_propose(id, b"list B".to_vec(), NodeId(0), &kps[0]);
        let mut m1 = MemberState::new(NodeId(1), kps[1], NodeId(0), id, keys.clone());
        let mut m2 = MemberState::new(NodeId(2), kps[2], NodeId(0), id, keys.clone());
        m1.handle_propose(&p1);
        let echo_from_m2 = match &m2.handle_propose(&p2)[0] {
            MemberAction::BroadcastEcho(e) => e.clone(),
            other => panic!("expected echo, got {other:?}"),
        };
        let actions = m1.handle_echo(&echo_from_m2);
        assert!(
            matches!(actions.as_slice(), [MemberAction::ReportEquivocation(ev)] if ev.verify(&kps[0].public))
        );
    }

    #[test]
    fn member_does_not_confirm_without_majority_echoes() {
        let (kps, keys) = committee(7); // threshold 4
        let id = ConsensusId { round: 1, seq: 1 };
        let propose = make_propose(id, b"payload".to_vec(), NodeId(0), &kps[0]);
        let mut member = MemberState::new(NodeId(1), kps[1], NodeId(0), id, keys.clone());
        member.handle_propose(&propose); // own echo = 1
                                         // Two more echoes: total 3 < 4, no confirm yet.
        for i in 2..4u32 {
            let mut other =
                MemberState::new(NodeId(i), kps[i as usize], NodeId(0), id, keys.clone());
            let echo = match &other.handle_propose(&propose)[0] {
                MemberAction::BroadcastEcho(e) => e.clone(),
                _ => unreachable!(),
            };
            let actions = member.handle_echo(&echo);
            assert!(actions.is_empty(), "no confirm before threshold");
        }
        assert!(!member.has_confirmed());
        // One more echo crosses the threshold.
        let mut fourth = MemberState::new(NodeId(4), kps[4], NodeId(0), id, keys.clone());
        let echo = match &fourth.handle_propose(&propose)[0] {
            MemberAction::BroadcastEcho(e) => e.clone(),
            _ => unreachable!(),
        };
        let actions = member.handle_echo(&echo);
        assert!(matches!(actions.as_slice(), [MemberAction::SendConfirm(_)]));
        assert!(member.has_confirmed());
    }

    #[test]
    fn propose_arriving_after_echoes_still_leads_to_confirm() {
        // The network may deliver peers' echoes before the leader's own PROPOSE
        // (independent per-link latencies). The late PROPOSE must still trigger
        // this member's echo and, once the quorum of echoes is in, its CONFIRM.
        let (kps, keys) = committee(5); // threshold 3
        let id = ConsensusId { round: 9, seq: 2 };
        let propose = make_propose(id, b"late propose".to_vec(), NodeId(0), &kps[0]);
        let mut late = MemberState::new(NodeId(1), kps[1], NodeId(0), id, keys.clone());
        // Echoes from members 2, 3 and 4 arrive first.
        for i in 2..5u32 {
            let mut other =
                MemberState::new(NodeId(i), kps[i as usize], NodeId(0), id, keys.clone());
            let echo = match &other.handle_propose(&propose)[0] {
                MemberAction::BroadcastEcho(e) => e.clone(),
                _ => unreachable!(),
            };
            assert!(
                late.handle_echo(&echo).is_empty(),
                "cannot confirm without the payload"
            );
        }
        assert!(!late.has_confirmed());
        // The leader's PROPOSE finally lands: the member echoes and confirms.
        let actions = late.handle_propose(&propose);
        assert!(actions
            .iter()
            .any(|a| matches!(a, MemberAction::BroadcastEcho(_))));
        assert!(actions
            .iter()
            .any(|a| matches!(a, MemberAction::SendConfirm(_))));
        assert!(late.has_confirmed());
        assert_eq!(late.accepted_payload(), Some(&b"late propose"[..]));
    }

    #[test]
    fn forged_messages_are_ignored() {
        let (kps, keys) = committee(5);
        let outsider = Keypair::from_seed(b"outsider");
        let id = ConsensusId { round: 1, seq: 1 };
        let mut member = MemberState::new(NodeId(1), kps[1], NodeId(0), id, keys.clone());
        // A proposal "from the leader" signed by an outsider is dropped silently.
        let forged = make_propose(id, b"evil".to_vec(), NodeId(0), &outsider);
        assert!(member.handle_propose(&forged).is_empty());
        assert!(member.accepted_payload().is_none());
        // An echo from a non-member is dropped too.
        let real = make_propose(id, b"ok".to_vec(), NodeId(0), &kps[0]);
        member.handle_propose(&real);
        let mut fake_echo_sender =
            MemberState::new(NodeId(9), outsider, NodeId(0), id, keys.clone());
        let _ = fake_echo_sender.handle_propose(&real); // builds state but node 9 is unknown
        let echo = make_echo(&real, NodeId(9), &outsider);
        assert!(member.handle_echo(&echo).is_empty());
    }

    #[test]
    fn leader_ignores_invalid_or_mismatched_confirms() {
        let (kps, keys) = committee(5);
        let id = ConsensusId { round: 1, seq: 1 };
        let digest = crate::messages::payload_digest(b"payload");
        let mut leader = LeaderState::new(id, digest, keys.clone());
        // Confirm for a different digest.
        let wrong = make_confirm(
            id,
            crate::messages::payload_digest(b"other"),
            NodeId(1),
            &kps[1],
            vec![],
        );
        assert!(leader.handle_confirm(&wrong).is_none());
        // Confirm signed by the wrong node.
        let forged = make_confirm(id, digest, NodeId(2), &kps[1], vec![]);
        assert!(leader.handle_confirm(&forged).is_none());
        assert_eq!(leader.confirm_count(), 0);
        // Valid confirms from a majority produce exactly one certificate.
        let mut certs = 0;
        for i in 1..=3u32 {
            let c = make_confirm(id, digest, NodeId(i), &kps[i as usize], vec![]);
            if leader.handle_confirm(&c).is_some() {
                certs += 1;
            }
        }
        assert_eq!(certs, 1);
        assert!(leader.certificate().is_some());
    }

    #[test]
    fn duplicate_confirms_do_not_inflate_quorum() {
        let (kps, keys) = committee(5);
        let id = ConsensusId { round: 1, seq: 1 };
        let digest = crate::messages::payload_digest(b"payload");
        let mut leader = LeaderState::new(id, digest, keys);
        let c1 = make_confirm(id, digest, NodeId(1), &kps[1], vec![]);
        for _ in 0..5 {
            assert!(leader.handle_confirm(&c1).is_none());
        }
        assert_eq!(leader.confirm_count(), 1);
    }
}
