//! Witnesses of leader misbehaviour.
//!
//! The paper defines a witness as a pair of messages `W = (m_l, m_0)` where
//! `m_l` is signed by the leader and the pair together proves the leader broke
//! the protocol (§V-D). Two concrete witness shapes arise in CycLedger:
//!
//! * **Equivocation** — the leader signed two *different* digests for the same
//!   `(r, sn)` consensus instance (caught during Algorithm 3).
//! * **Commitment mismatch** — the leader signed a member list `S` whose hash
//!   does not equal the semi-commitment the referee committee distributed
//!   (caught during semi-commitment verification, Algorithm 4 step 3).
//!
//! Claims 3 and 4 say the recovery procedure is complete and sound: a faulty
//! leader is always caught (the partial set sees every protocol message) and an
//! honest leader can never be framed (a witness requires the leader's own
//! signature, which cannot be forged). The verification functions here are what
//! the referee committee runs before evicting a leader.

use cycledger_crypto::schnorr::{verify, PublicKey, Signature};
use cycledger_crypto::sha256::{hash_parts, Digest};
use cycledger_net::topology::NodeId;

use crate::messages::{propose_signing_bytes, ConsensusId};

/// Proof that a leader signed two different digests for one consensus instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EquivocationEvidence {
    /// The consensus instance.
    pub id: ConsensusId,
    /// The accused leader.
    pub leader: NodeId,
    /// First digest and the leader's signature over it.
    pub digest_a: Digest,
    /// Signature over `(id, digest_a)`.
    pub sig_a: Signature,
    /// Second, different digest.
    pub digest_b: Digest,
    /// Signature over `(id, digest_b)`.
    pub sig_b: Signature,
}

impl EquivocationEvidence {
    /// Verifies the evidence against the leader's public key: both signatures
    /// must be valid leader signatures and the digests must differ.
    pub fn verify(&self, leader_pk: &PublicKey) -> bool {
        crate::transition::digests_conflict(&self.digest_a, &self.digest_b)
            && verify(
                leader_pk,
                &propose_signing_bytes(&self.id, &self.digest_a),
                &self.sig_a,
            )
            && verify(
                leader_pk,
                &propose_signing_bytes(&self.id, &self.digest_b),
                &self.sig_b,
            )
    }
}

/// Signing payload a leader uses when sending its member list to the partial
/// set during semi-commitment exchange (Algorithm 4 step 1).
pub fn member_list_signing_bytes(round: u64, committee: usize, member_list: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(member_list.len() + 32);
    out.extend_from_slice(b"cycledger/semi-com-member-list");
    out.extend_from_slice(&round.to_be_bytes());
    out.extend_from_slice(&(committee as u64).to_be_bytes());
    out.extend_from_slice(member_list);
    out
}

/// The semi-commitment of a member list: `H(S)` (§IV-B).
pub fn semi_commitment(member_list: &[u8]) -> Digest {
    hash_parts(&[b"cycledger/semi-commitment", member_list])
}

/// Proof that the leader's signed member list does not hash to the
/// semi-commitment recorded by the referee committee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitmentMismatchEvidence {
    /// Round in question.
    pub round: u64,
    /// Committee index.
    pub committee: usize,
    /// The accused leader.
    pub leader: NodeId,
    /// The member list the leader sent (serialized), i.e. `m_l`.
    pub member_list: Vec<u8>,
    /// Leader's signature over the member list.
    pub list_signature: Signature,
    /// The semi-commitment distributed by the referee committee, i.e. `m_0`.
    pub recorded_commitment: Digest,
}

impl CommitmentMismatchEvidence {
    /// Verifies the evidence: the leader really signed this member list, and its
    /// hash differs from the recorded semi-commitment.
    pub fn verify(&self, leader_pk: &PublicKey) -> bool {
        crate::transition::digests_conflict(
            &semi_commitment(&self.member_list),
            &self.recorded_commitment,
        ) && verify(
            leader_pk,
            &member_list_signing_bytes(self.round, self.committee, &self.member_list),
            &self.list_signature,
        )
    }
}

/// Any witness a partial-set member may submit to impeach a leader.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Witness {
    /// The leader equivocated inside Algorithm 3.
    Equivocation(EquivocationEvidence),
    /// The leader's member list contradicts its semi-commitment.
    CommitmentMismatch(CommitmentMismatchEvidence),
}

impl Witness {
    /// The accused leader.
    pub fn accused(&self) -> NodeId {
        match self {
            Witness::Equivocation(e) => e.leader,
            Witness::CommitmentMismatch(e) => e.leader,
        }
    }

    /// Verifies the witness against the accused leader's public key.
    pub fn verify(&self, leader_pk: &PublicKey) -> bool {
        match self {
            Witness::Equivocation(e) => e.verify(leader_pk),
            Witness::CommitmentMismatch(e) => e.verify(leader_pk),
        }
    }

    /// Approximate wire size (for network accounting).
    pub fn wire_size(&self) -> u64 {
        match self {
            Witness::Equivocation(_) => 16 + 4 + 2 * (32 + 96),
            Witness::CommitmentMismatch(e) => 8 + 8 + 4 + e.member_list.len() as u64 + 96 + 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycledger_crypto::schnorr::{sign, Keypair};

    fn id() -> ConsensusId {
        ConsensusId { round: 4, seq: 9 }
    }

    fn equivocation(leader: &Keypair) -> EquivocationEvidence {
        let da = hash_parts(&[b"list A"]);
        let db = hash_parts(&[b"list B"]);
        EquivocationEvidence {
            id: id(),
            leader: NodeId(3),
            digest_a: da,
            sig_a: sign(&leader.secret, &propose_signing_bytes(&id(), &da)),
            digest_b: db,
            sig_b: sign(&leader.secret, &propose_signing_bytes(&id(), &db)),
        }
    }

    #[test]
    fn real_equivocation_verifies() {
        let leader = Keypair::from_seed(b"bad-leader");
        let ev = equivocation(&leader);
        assert!(ev.verify(&leader.public));
        assert!(Witness::Equivocation(ev).verify(&leader.public));
    }

    #[test]
    fn equivocation_with_equal_digests_rejected() {
        let leader = Keypair::from_seed(b"leader");
        let d = hash_parts(&[b"same"]);
        let sig = sign(&leader.secret, &propose_signing_bytes(&id(), &d));
        let ev = EquivocationEvidence {
            id: id(),
            leader: NodeId(3),
            digest_a: d,
            sig_a: sig,
            digest_b: d,
            sig_b: sig,
        };
        assert!(!ev.verify(&leader.public));
    }

    #[test]
    fn forged_equivocation_cannot_frame_honest_leader() {
        // A malicious partial-set member fabricates "evidence" with its own key.
        let honest_leader = Keypair::from_seed(b"honest-leader");
        let malicious = Keypair::from_seed(b"malicious-member");
        let ev = equivocation(&malicious);
        assert!(
            !ev.verify(&honest_leader.public),
            "witness must be signed by the accused leader (Claim 4)"
        );
    }

    #[test]
    fn commitment_mismatch_verifies_only_when_hash_differs() {
        let leader = Keypair::from_seed(b"leader-cm");
        let list = b"PK1,PK2,PK3".to_vec();
        let sig = sign(&leader.secret, &member_list_signing_bytes(7, 2, &list));
        // Honest case: recorded commitment matches ⇒ no valid witness.
        let honest = CommitmentMismatchEvidence {
            round: 7,
            committee: 2,
            leader: NodeId(1),
            member_list: list.clone(),
            list_signature: sig,
            recorded_commitment: semi_commitment(&list),
        };
        assert!(!honest.verify(&leader.public));
        // Dishonest case: commitment recorded at C_R differs from what the
        // leader signed ⇒ valid witness.
        let dishonest = CommitmentMismatchEvidence {
            recorded_commitment: hash_parts(&[b"something else"]),
            ..honest.clone()
        };
        assert!(dishonest.verify(&leader.public));
        let w = Witness::CommitmentMismatch(dishonest);
        assert_eq!(w.accused(), NodeId(1));
        assert!(w.wire_size() > 100);
    }

    #[test]
    fn commitment_mismatch_with_forged_signature_rejected() {
        let leader = Keypair::from_seed(b"leader-cm2");
        let impostor = Keypair::from_seed(b"impostor-cm2");
        let list = b"PK1,PK2".to_vec();
        let ev = CommitmentMismatchEvidence {
            round: 1,
            committee: 0,
            leader: NodeId(5),
            member_list: list.clone(),
            list_signature: sign(&impostor.secret, &member_list_signing_bytes(1, 0, &list)),
            recorded_commitment: hash_parts(&[b"different"]),
        };
        assert!(!ev.verify(&leader.public));
    }

    #[test]
    fn witness_accused_and_size_for_equivocation() {
        let leader = Keypair::from_seed(b"leader-acc");
        let w = Witness::Equivocation(equivocation(&leader));
        assert_eq!(w.accused(), NodeId(3));
        assert!(w.wire_size() > 200);
    }

    #[test]
    fn semi_commitment_is_deterministic() {
        assert_eq!(semi_commitment(b"abc"), semi_commitment(b"abc"));
        assert_ne!(semi_commitment(b"abc"), semi_commitment(b"abd"));
    }
}
