//! Quorum certificates ("SigList" in the paper's pseudocode).
//!
//! Algorithm 3 terminates at the leader once more than half of the committee has
//! CONFIRMed the same digest. The collected confirmations form a transferable
//! certificate: the leader forwards it (e.g. with `TXdecSET` to the referee
//! committee), and anyone holding the committee's public keys can verify that a
//! majority really signed off — which is why a faulty leader "cannot fabricate a
//! consensus result" (§IV-D).

use std::collections::BTreeMap;
use std::sync::Arc;

use cycledger_crypto::schnorr::{PublicKey, Signature};
use cycledger_crypto::sha256::Digest;
use cycledger_net::topology::NodeId;

use crate::messages::{confirm_signing_bytes, ConsensusId};

/// The public keys of a committee, indexed by node id.
///
/// The directory is immutable once built and shared behind an `Arc`: one
/// Algorithm 3 instance hands a copy to every member state machine, so a
/// clone must be a reference-count bump, not a fresh `O(C)` tree of 64-byte
/// keys per member (the seed paid that `O(C²)` copy per instance).
#[derive(Clone, Debug, Default)]
pub struct CommitteeKeys {
    keys: Arc<BTreeMap<NodeId, PublicKey>>,
}

impl CommitteeKeys {
    /// Builds the key directory from `(node, key)` pairs.
    pub fn new(pairs: impl IntoIterator<Item = (NodeId, PublicKey)>) -> Self {
        CommitteeKeys {
            keys: Arc::new(pairs.into_iter().collect()),
        }
    }

    /// Looks up a member's key.
    pub fn get(&self, node: NodeId) -> Option<&PublicKey> {
        self.keys.get(&node)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// True if `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.keys.contains_key(&node)
    }

    /// Iterates over members in id order.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.keys.keys().copied()
    }

    /// The majority threshold `⌊C/2⌋ + 1` used throughout Algorithm 3
    /// (delegates to the shared decision core — see [`crate::transition`]).
    pub fn majority_threshold(&self) -> usize {
        crate::transition::majority_threshold(self.len())
    }
}

/// A quorum certificate: a digest plus confirm-signatures from distinct members.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuorumCertificate {
    /// Consensus instance the certificate belongs to.
    pub id: ConsensusId,
    /// The agreed digest.
    pub digest: Digest,
    /// Confirm signatures `(member, signature)`, deduplicated by member.
    pub signatures: Vec<(NodeId, Signature)>,
}

/// Why certificate verification failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuorumError {
    /// Fewer distinct valid signers than the required threshold.
    InsufficientSigners,
    /// A signer is not a member of the committee.
    UnknownSigner,
    /// A signature does not verify.
    BadSignature,
    /// The same member appears twice.
    DuplicateSigner,
}

impl QuorumCertificate {
    /// Number of signatures carried.
    pub fn signer_count(&self) -> usize {
        self.signatures.len()
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> u64 {
        16 + 32 + self.signatures.len() as u64 * (4 + 96)
    }

    /// Verifies the certificate against a committee key directory: all signers
    /// must be distinct committee members with valid confirm-signatures over
    /// `(id, digest)`, and there must be at least `threshold` of them.
    pub fn verify(&self, keys: &CommitteeKeys, threshold: usize) -> Result<(), QuorumError> {
        // Cheap structural pre-check before any signature work: the distinct
        // signer count can never exceed the raw signature count.
        if self.signatures.len() < threshold {
            return Err(QuorumError::InsufficientSigners);
        }
        let mut seen = std::collections::BTreeSet::new();
        for (node, signature) in &self.signatures {
            if !seen.insert(*node) {
                return Err(QuorumError::DuplicateSigner);
            }
            let pk = keys.get(*node).ok_or(QuorumError::UnknownSigner)?;
            let bytes = confirm_signing_bytes(&self.id, &self.digest, *node);
            if !cycledger_crypto::schnorr::verify(pk, &bytes, signature) {
                return Err(QuorumError::BadSignature);
            }
        }
        if seen.len() < threshold {
            return Err(QuorumError::InsufficientSigners);
        }
        Ok(())
    }

    /// Convenience: verify against the majority threshold of `keys`.
    pub fn verify_majority(&self, keys: &CommitteeKeys) -> Result<(), QuorumError> {
        self.verify(keys, keys.majority_threshold())
    }

    /// Verifies the certificate using one batched random-linear-combination
    /// signature check instead of one check per signer.
    ///
    /// This is the entry point the round engine's shard executor uses for
    /// per-shard vote sets: the whole `SigList` is handed to
    /// [`cycledger_crypto::schnorr::batch_verify`] at once. Structural rules
    /// (membership, deduplication, threshold) are identical to [`Self::verify`], and
    /// when the batch check fails the slow path re-runs per signature so the
    /// caller still learns *which* rule broke.
    pub fn verify_batch(&self, keys: &CommitteeKeys, threshold: usize) -> Result<(), QuorumError> {
        self.structural_check(keys, threshold)?;
        let message_bytes: Vec<Vec<u8>> = self
            .signatures
            .iter()
            .map(|(node, _)| confirm_signing_bytes(&self.id, &self.digest, *node))
            .collect();
        let entries: Vec<cycledger_crypto::schnorr::BatchEntry<'_>> = self
            .signatures
            .iter()
            .zip(&message_bytes)
            .map(
                |((node, signature), message)| cycledger_crypto::schnorr::BatchEntry {
                    public_key: keys.get(*node).expect("membership checked above"),
                    message,
                    signature,
                },
            )
            .collect();
        if cycledger_crypto::schnorr::batch_verify(&entries) {
            return Ok(());
        }
        // The batch is bad: fall back to the sequential path for a precise
        // error (and as defence in depth should the two paths ever disagree).
        self.verify(keys, threshold)?;
        Err(QuorumError::BadSignature)
    }

    /// Batched counterpart of [`Self::verify_majority`].
    pub fn verify_batch_majority(&self, keys: &CommitteeKeys) -> Result<(), QuorumError> {
        self.verify_batch(keys, keys.majority_threshold())
    }

    /// The non-cryptographic rules of certificate verification: enough
    /// signatures, all signers distinct committee members, distinct-signer
    /// count at threshold. Shared by the sequential, per-certificate-batch and
    /// cross-committee-batch paths.
    fn structural_check(&self, keys: &CommitteeKeys, threshold: usize) -> Result<(), QuorumError> {
        if self.signatures.len() < threshold {
            return Err(QuorumError::InsufficientSigners);
        }
        let mut seen = std::collections::BTreeSet::new();
        for (node, _) in &self.signatures {
            if !seen.insert(*node) {
                return Err(QuorumError::DuplicateSigner);
            }
            if keys.get(*node).is_none() {
                return Err(QuorumError::UnknownSigner);
            }
        }
        if seen.len() < threshold {
            return Err(QuorumError::InsufficientSigners);
        }
        Ok(())
    }
}

/// Verifies many certificates — typically one per committee for a whole round
/// phase — with a **single** random-linear-combination batch check across all
/// of their signatures, instead of one batch per certificate.
///
/// Input is `(certificate, that committee's key directory, threshold)`; the
/// returned vector is aligned with the input. Structural rules are checked
/// per certificate exactly as in [`QuorumCertificate::verify`]; certificates
/// that fail them are excluded from the combined batch and reported
/// individually. If the combined batch fails, each structurally valid
/// certificate is re-checked on its own (via [`QuorumCertificate::verify_batch`],
/// which itself falls back to the sequential path) so only the culprits are
/// rejected and with a precise error.
///
/// Soundness matches `batch_verify`: the random coefficients are derived from
/// a transcript over every `(R, PK, message, s)` in the combined batch, so a
/// forged signature in one certificate cannot hide behind valid signatures
/// from another committee.
pub fn verify_certs_batch(
    certs: &[(&QuorumCertificate, &CommitteeKeys, usize)],
) -> Vec<Result<(), QuorumError>> {
    // Structural pass; assemble signing bytes for the survivors.
    let mut results: Vec<Result<(), QuorumError>> = Vec::with_capacity(certs.len());
    let mut message_bytes: Vec<Vec<u8>> = Vec::new();
    let mut spans: Vec<Option<usize>> = Vec::with_capacity(certs.len());
    for (cert, keys, threshold) in certs {
        match cert.structural_check(keys, *threshold) {
            Err(err) => {
                results.push(Err(err));
                spans.push(None);
            }
            Ok(()) => {
                spans.push(Some(message_bytes.len()));
                for (node, _) in &cert.signatures {
                    message_bytes.push(confirm_signing_bytes(&cert.id, &cert.digest, *node));
                }
                results.push(Ok(()));
            }
        }
    }
    // Crypto pass: one combined batch over every structurally valid certificate.
    let mut entries: Vec<cycledger_crypto::schnorr::BatchEntry<'_>> = Vec::new();
    for ((cert, keys, _), span) in certs.iter().zip(&spans) {
        let Some(start) = span else { continue };
        for (offset, (node, signature)) in cert.signatures.iter().enumerate() {
            entries.push(cycledger_crypto::schnorr::BatchEntry {
                public_key: keys.get(*node).expect("membership checked above"),
                message: &message_bytes[start + offset],
                signature,
            });
        }
    }
    if entries.is_empty() || cycledger_crypto::schnorr::batch_verify(&entries) {
        return results;
    }
    // At least one certificate is bad: isolate the culprits per certificate.
    for ((cert, keys, threshold), result) in certs.iter().zip(results.iter_mut()) {
        if result.is_ok() {
            *result = cert.verify_batch(keys, *threshold);
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::make_confirm;
    use cycledger_crypto::schnorr::Keypair;

    fn committee(n: usize) -> (Vec<Keypair>, CommitteeKeys) {
        let keypairs: Vec<Keypair> = (0..n)
            .map(|i| Keypair::from_seed(format!("qc-member-{i}").as_bytes()))
            .collect();
        let keys = CommitteeKeys::new(
            keypairs
                .iter()
                .enumerate()
                .map(|(i, kp)| (NodeId(i as u32), kp.public)),
        );
        (keypairs, keys)
    }

    fn certificate(keypairs: &[Keypair], signers: &[usize], digest: Digest) -> QuorumCertificate {
        let id = ConsensusId { round: 1, seq: 2 };
        let signatures = signers
            .iter()
            .map(|&i| {
                let c = make_confirm(id, digest, NodeId(i as u32), &keypairs[i], vec![]);
                (NodeId(i as u32), c.signature)
            })
            .collect();
        QuorumCertificate {
            id,
            digest,
            signatures,
        }
    }

    #[test]
    fn majority_threshold_formula() {
        let (_, keys) = committee(7);
        assert_eq!(keys.majority_threshold(), 4);
        let (_, keys) = committee(8);
        assert_eq!(keys.majority_threshold(), 5);
        assert!(keys.contains(NodeId(0)));
        assert!(!keys.contains(NodeId(100)));
        assert_eq!(keys.members().count(), 8);
        assert!(!keys.is_empty());
    }

    #[test]
    fn valid_certificate_verifies() {
        let (kps, keys) = committee(7);
        let digest = cycledger_crypto::sha256::sha256(b"decision");
        let qc = certificate(&kps, &[0, 1, 2, 3], digest);
        assert_eq!(qc.verify_majority(&keys), Ok(()));
        assert_eq!(qc.signer_count(), 4);
        assert!(qc.wire_size() > 100);
    }

    #[test]
    fn too_few_signers_rejected() {
        let (kps, keys) = committee(7);
        let digest = cycledger_crypto::sha256::sha256(b"decision");
        let qc = certificate(&kps, &[0, 1, 2], digest);
        assert_eq!(
            qc.verify_majority(&keys),
            Err(QuorumError::InsufficientSigners)
        );
        // But a lower explicit threshold can accept it.
        assert_eq!(qc.verify(&keys, 3), Ok(()));
    }

    #[test]
    fn unknown_signer_rejected() {
        let (kps, keys) = committee(5);
        let digest = cycledger_crypto::sha256::sha256(b"decision");
        let mut qc = certificate(&kps, &[0, 1, 2], digest);
        // Re-label one signer as a node outside the committee.
        qc.signatures[0].0 = NodeId(99);
        assert_eq!(qc.verify_majority(&keys), Err(QuorumError::UnknownSigner));
    }

    #[test]
    fn bad_signature_rejected() {
        let (kps, keys) = committee(5);
        let digest = cycledger_crypto::sha256::sha256(b"decision");
        let other_digest = cycledger_crypto::sha256::sha256(b"something else");
        let mut qc = certificate(&kps, &[0, 1, 2], digest);
        // Signature 0 actually signs a different digest.
        let forged = certificate(&kps, &[0], other_digest);
        qc.signatures[0] = forged.signatures[0];
        assert_eq!(qc.verify_majority(&keys), Err(QuorumError::BadSignature));
    }

    #[test]
    fn duplicate_signer_rejected() {
        let (kps, keys) = committee(5);
        let digest = cycledger_crypto::sha256::sha256(b"decision");
        let mut qc = certificate(&kps, &[0, 1, 2], digest);
        qc.signatures.push(qc.signatures[0]);
        assert_eq!(qc.verify_majority(&keys), Err(QuorumError::DuplicateSigner));
    }

    #[test]
    fn batched_verification_matches_sequential() {
        let (kps, keys) = committee(7);
        let digest = cycledger_crypto::sha256::sha256(b"decision");
        let qc = certificate(&kps, &[0, 1, 2, 3], digest);
        assert_eq!(qc.verify_batch_majority(&keys), Ok(()));
        assert_eq!(
            qc.verify_batch(&keys, 5),
            Err(QuorumError::InsufficientSigners)
        );

        // Structural failures surface the same errors as the slow path.
        let mut dup = qc.clone();
        dup.signatures.push(dup.signatures[0]);
        assert_eq!(
            dup.verify_batch_majority(&keys),
            Err(QuorumError::DuplicateSigner)
        );
        let mut foreign = qc.clone();
        foreign.signatures[0].0 = NodeId(99);
        assert_eq!(
            foreign.verify_batch_majority(&keys),
            Err(QuorumError::UnknownSigner)
        );

        // A cryptographically bad signature fails the batch and is pinpointed
        // by the fallback.
        let other = cycledger_crypto::sha256::sha256(b"other");
        let mut bad = qc.clone();
        bad.signatures[2] = certificate(&kps, &[2], other).signatures[0];
        assert_eq!(
            bad.verify_batch_majority(&keys),
            Err(QuorumError::BadSignature)
        );
    }

    #[test]
    fn cross_committee_batch_isolates_culprits() {
        // Three committees with disjoint key sets, one certificate each.
        let (kps_a, keys_a) = committee(5);
        let kps_b: Vec<Keypair> = (0..5)
            .map(|i| Keypair::from_seed(format!("qc-b-{i}").as_bytes()))
            .collect();
        let keys_b = CommitteeKeys::new(
            kps_b
                .iter()
                .enumerate()
                .map(|(i, kp)| (NodeId(i as u32), kp.public)),
        );
        let kps_c: Vec<Keypair> = (0..5)
            .map(|i| Keypair::from_seed(format!("qc-c-{i}").as_bytes()))
            .collect();
        let keys_c = CommitteeKeys::new(
            kps_c
                .iter()
                .enumerate()
                .map(|(i, kp)| (NodeId(i as u32), kp.public)),
        );
        let digest = cycledger_crypto::sha256::sha256(b"decision");
        let qc_a = certificate(&kps_a, &[0, 1, 2], digest);
        let qc_b = certificate(&kps_b, &[1, 2, 3], digest);
        let qc_c = certificate(&kps_c, &[0, 2, 4], digest);

        // All valid: every slot Ok, one combined batch suffices.
        let all = verify_certs_batch(&[
            (&qc_a, &keys_a, 3),
            (&qc_b, &keys_b, 3),
            (&qc_c, &keys_c, 3),
        ]);
        assert_eq!(all, vec![Ok(()), Ok(()), Ok(())]);

        // One forged signature in the middle certificate: only that slot is
        // rejected, and with the precise error.
        let mut bad_b = qc_b.clone();
        let other = cycledger_crypto::sha256::sha256(b"other");
        bad_b.signatures[1] = certificate(&kps_b, &[2], other).signatures[0];
        let mixed = verify_certs_batch(&[
            (&qc_a, &keys_a, 3),
            (&bad_b, &keys_b, 3),
            (&qc_c, &keys_c, 3),
        ]);
        assert_eq!(mixed, vec![Ok(()), Err(QuorumError::BadSignature), Ok(())]);

        // Structural failures are reported per slot without disturbing others,
        // and an all-structural-failure input performs no crypto at all.
        let thin = certificate(&kps_a, &[0, 1], digest);
        let structural = verify_certs_batch(&[(&thin, &keys_a, 3), (&qc_c, &keys_c, 3)]);
        assert_eq!(
            structural,
            vec![Err(QuorumError::InsufficientSigners), Ok(())]
        );
        assert_eq!(
            verify_certs_batch(&[(&thin, &keys_a, 3)]),
            vec![Err(QuorumError::InsufficientSigners)]
        );
        assert!(verify_certs_batch(&[]).is_empty());
    }

    #[test]
    fn empty_committee_behaves() {
        let keys = CommitteeKeys::default();
        assert!(keys.is_empty());
        assert_eq!(keys.len(), 0);
        assert_eq!(keys.majority_threshold(), 1);
    }
}
