//! Shared-ground-truth memoization of Schnorr verification results.
//!
//! One Algorithm 3 instance makes every member verify the *same* handful of
//! signatures: the leader's PROPOSE signature is checked by all `C` members
//! (and re-checked once per relaying ECHO), and each member's ECHO signature
//! is checked by all `C − 1` receivers. The verification of a fixed
//! `(public key, message, signature)` triple is a pure function, so the
//! simulator shares one result table per instance instead of paying the curve
//! multiplication once per receiver — exactly the idiom the inter-consensus
//! phase already uses for transaction validity ("ground truth shared by every
//! member, not once per member per transaction").
//!
//! The memo changes no protocol outcome: honest members would all compute the
//! same boolean, equivocating payloads produce different message bytes (and
//! therefore different memo keys), and a forged signature caches `false` for
//! every receiver alike. With the memo, a `C`-member instance performs
//! `O(C)` distinct verifications instead of `O(C²)`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use cycledger_crypto::schnorr::{verify, PublicKey, Signature};
use cycledger_crypto::sha256::{hash_parts, Digest};

/// A cloneable handle to one instance's verification memo.
///
/// Handles are reference-counted (`Rc`): the driver creates one cache per
/// Algorithm 3 instance and hands a clone to every member/leader state
/// machine, which all run on the same worker thread. The default handle owns
/// a fresh private memo, so state machines used standalone behave exactly as
/// before.
#[derive(Clone, Debug, Default)]
pub struct SigCache {
    results: Rc<RefCell<HashMap<Digest, bool>>>,
}

impl SigCache {
    /// Creates an empty memo.
    pub fn new() -> SigCache {
        SigCache::default()
    }

    /// Verifies `signature` by `public_key` over `message`, serving repeated
    /// queries for the same triple from the memo.
    pub fn verify(&self, public_key: &PublicKey, message: &[u8], signature: &Signature) -> bool {
        let key = hash_parts(&[
            b"cycledger/sig-memo",
            &public_key.to_bytes(),
            message,
            &signature.to_bytes(),
        ]);
        if let Some(&ok) = self.results.borrow().get(&key) {
            return ok;
        }
        let ok = verify(public_key, message, signature);
        self.results.borrow_mut().insert(key, ok);
        ok
    }

    /// Number of distinct verifications performed so far.
    pub fn len(&self) -> usize {
        self.results.borrow().len()
    }

    /// True if no verification has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.results.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycledger_crypto::schnorr::Keypair;

    #[test]
    fn memo_matches_direct_verification() {
        let kp = Keypair::from_seed(b"sigcache-a");
        let other = Keypair::from_seed(b"sigcache-b");
        let sig = kp.sign(b"message");
        let cache = SigCache::new();
        assert!(cache.verify(&kp.public, b"message", &sig));
        // Served from the memo; still true, no growth.
        assert!(cache.verify(&kp.public, b"message", &sig));
        assert_eq!(cache.len(), 1);
        // Distinct triples are distinct entries, with the right verdicts.
        assert!(!cache.verify(&other.public, b"message", &sig));
        assert!(!cache.verify(&kp.public, b"other message", &sig));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn clones_share_one_memo() {
        let kp = Keypair::from_seed(b"sigcache-c");
        let sig = kp.sign(b"shared");
        let cache = SigCache::new();
        let handle = cache.clone();
        assert!(cache.is_empty());
        assert!(handle.verify(&kp.public, b"shared", &sig));
        assert_eq!(cache.len(), 1, "clone writes into the shared table");
    }
}
