//! Typed committee-traffic envelopes for the message-driven data plane.
//!
//! The synchronous simulation computes votes and list forwards directly and
//! only *accounts* their traffic; the message-driven mode instead routes every
//! committee interaction — `TXList` announcements, vote replies, the whole
//! Algorithm 3 exchange, certified-list forwarding, recovery accusations and
//! impeachment votes — through the discrete-event network as
//! [`CommitteeMessage`] envelopes, so partitions, targeted delay, loss and
//! reordering can actually perturb consensus.
//!
//! [`CarriesAlg3`] is the small adapter that lets the network-driven
//! Algorithm 3 executor run over any envelope type that can embed its
//! PROPOSE / ECHO / CONFIRM traffic: the classic [`Alg3Message`] network uses
//! the identity embedding, while a [`CommitteeMessage`] network wraps and
//! unwraps the [`CommitteeMessage::Alg3`] variant (ignoring unrelated
//! envelopes that are still in flight, e.g. vote replies arriving after the
//! leader's collection deadline).

use crate::messages::Alg3Message;
use crate::votes::VoteVector;
use cycledger_net::topology::NodeId;

/// An envelope type that can embed Algorithm 3 traffic.
pub trait CarriesAlg3: Clone {
    /// Wraps an Algorithm 3 message for transmission.
    fn from_alg3(message: Alg3Message) -> Self;

    /// Unwraps the Algorithm 3 message, or `None` if the envelope carries
    /// something else (which the Algorithm 3 event loop skips).
    fn into_alg3(self) -> Option<Alg3Message>;
}

impl CarriesAlg3 for Alg3Message {
    fn from_alg3(message: Alg3Message) -> Self {
        message
    }

    fn into_alg3(self) -> Option<Alg3Message> {
        Some(self)
    }
}

/// Every kind of committee traffic the message-driven phases exchange.
///
/// Envelopes carry the data that influences receiver control flow; wire
/// sizes are charged separately at send time (exactly as the accounting-only
/// path did), so byte metrics stay comparable between the two modes.
#[derive(Clone, Debug)]
// Alg3 traffic dominates every committee exchange (one PROPOSE/ECHO/CONFIRM
// per member per instance); boxing it to shrink the rare small variants
// would put an allocation on the hottest send path.
#[allow(clippy::large_enum_variant)]
pub enum CommitteeMessage {
    /// Leader → members: the round's `TXList` announcement (the transaction
    /// payload itself is shared simulation state; `count` pins the length
    /// every member votes over).
    TxList {
        /// Committee / shard index.
        committee: u32,
        /// Number of offered transactions.
        count: u32,
    },
    /// Member → leader: the member's vote vector over the announced list.
    Votes(VoteVector),
    /// Embedded Algorithm 3 traffic (PROPOSE / ECHO / CONFIRM).
    Alg3(Alg3Message),
    /// Leader → referee members: the certified `TXdecSET` forward.
    CertForward {
        /// Committee / shard index.
        committee: u32,
        /// Number of decided transactions.
        decided: u32,
    },
    /// Input-committee key member → destination leader / partial set: a
    /// certified cross-shard `TXList_{i,j}`.
    ListForward {
        /// Input shard.
        input: u32,
        /// Output shard.
        output: u32,
        /// Number of forwarded transactions.
        count: u32,
    },
    /// Destination leader → input leader: the certified vote result.
    ListReply {
        /// Input shard.
        input: u32,
        /// Output shard.
        output: u32,
        /// Number of accepted transactions.
        accepted: u32,
    },
    /// Recovery prosecutor → committee: an accusation against the leader.
    Accusation {
        /// Committee the accusation concerns.
        committee: u32,
        /// The accused leader.
        accused: NodeId,
    },
    /// Committee member → prosecutor: the impeachment vote.
    ImpeachVote {
        /// Committee the vote concerns.
        committee: u32,
        /// Whether the member approves the impeachment.
        approve: bool,
    },
    /// Syncing member → peer: request for a chunk of the shard's chain,
    /// starting at `from_round` and capped at `max_blocks` headers.
    SyncRequest {
        /// First round wanted (0 = from genesis).
        from_round: u64,
        /// Chunk size cap the requester will accept.
        max_blocks: u32,
        /// Request ordinal, echoed in the reply so the requester can discard
        /// stale chunks that arrive after it rotated to another peer.
        request_id: u64,
    },
    /// Peer → syncing member: one chunk of header summaries. The block
    /// payloads are shared simulation state; what the requester must verify
    /// over the wire is the header linkage, carried here.
    SyncChunk {
        /// Round of the first header in the chunk.
        from_round: u64,
        /// `(round, prev_hash, header_hash)` per block, in round order.
        headers: Vec<SyncHeader>,
        /// Echo of the request ordinal this chunk answers.
        request_id: u64,
    },
    /// Syncing member → peers: catch-up complete; the verified tip.
    SyncDone {
        /// Height the member synced to.
        height: u64,
        /// Hash of the tip header the member verified.
        tip: [u8; 32],
    },
}

/// One block-header summary inside a [`CommitteeMessage::SyncChunk`]: just
/// enough for the requester to verify the hash linkage against the
/// quorum-certified tip it learned from the committee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncHeader {
    /// Block round (also its height in the chain).
    pub round: u64,
    /// Hash of the previous block's header.
    pub prev_hash: [u8; 32],
    /// Hash of this block's header.
    pub hash: [u8; 32],
}

impl CarriesAlg3 for CommitteeMessage {
    fn from_alg3(message: Alg3Message) -> Self {
        CommitteeMessage::Alg3(message)
    }

    fn into_alg3(self) -> Option<Alg3Message> {
        match self {
            CommitteeMessage::Alg3(message) => Some(message),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{make_propose_unsigned, ConsensusId};
    use crate::votes::Vote;

    #[test]
    fn alg3_identity_embedding_round_trips() {
        let propose = make_propose_unsigned(
            ConsensusId { round: 1, seq: 2 },
            b"payload".to_vec(),
            NodeId(3),
        );
        let message = Alg3Message::Propose(propose);
        let wrapped = Alg3Message::from_alg3(message.clone());
        assert_eq!(wrapped.clone().into_alg3(), Some(message));
        let _ = wrapped;
    }

    #[test]
    fn committee_envelope_wraps_and_filters() {
        let propose = make_propose_unsigned(
            ConsensusId { round: 1, seq: 2 },
            b"payload".to_vec(),
            NodeId(3),
        );
        let alg3 = Alg3Message::Propose(propose);
        let wrapped = CommitteeMessage::from_alg3(alg3.clone());
        assert_eq!(wrapped.into_alg3(), Some(alg3));
        // Non-Alg3 envelopes unwrap to None — the Alg3 event loop skips them.
        let votes = CommitteeMessage::Votes(VoteVector::new(NodeId(1), vec![Vote::Yes]));
        assert!(votes.into_alg3().is_none());
        assert!(CommitteeMessage::TxList {
            committee: 0,
            count: 4
        }
        .into_alg3()
        .is_none());
    }

    #[test]
    fn sync_envelopes_are_not_alg3_traffic() {
        assert!(CommitteeMessage::SyncRequest {
            from_round: 0,
            max_blocks: 8,
            request_id: 1,
        }
        .into_alg3()
        .is_none());
        assert!(CommitteeMessage::SyncChunk {
            from_round: 0,
            headers: vec![SyncHeader {
                round: 0,
                prev_hash: [0; 32],
                hash: [1; 32],
            }],
            request_id: 1,
        }
        .into_alg3()
        .is_none());
        assert!(CommitteeMessage::SyncDone {
            height: 4,
            tip: [2; 32],
        }
        .into_alg3()
        .is_none());
    }
}
