//! Transaction voting (Algorithm 5's `V List` / `TXdecSET` machinery).
//!
//! During intra-committee consensus every member receives the leader's `TXList`
//! and replies with a vote per transaction: `Yes`, `No`, or `Unknown` (the vote
//! an honest node casts when it cannot finish validating in time). The leader
//! keeps the transactions with a strict majority of `Yes` votes — that set is
//! `TXdecSET` — and assembles everyone's votes into `V List`, which later feeds
//! the reputation update (§IV-E).

use cycledger_ledger::transaction::TxId;
use cycledger_net::topology::NodeId;

/// A member's opinion on one transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Vote {
    /// The transaction is valid.
    Yes,
    /// The transaction is invalid.
    No,
    /// The member could not decide within the time limit.
    Unknown,
}

impl Vote {
    /// Numeric encoding used by the cosine-similarity score (+1 / −1 / 0).
    pub fn as_i8(self) -> i8 {
        match self {
            Vote::Yes => 1,
            Vote::No => -1,
            Vote::Unknown => 0,
        }
    }
}

/// One member's votes over an ordered transaction list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VoteVector {
    /// The voting member.
    pub voter: NodeId,
    /// One vote per transaction, in `TXList` order.
    pub votes: Vec<Vote>,
}

impl VoteVector {
    /// Creates a vote vector.
    pub fn new(voter: NodeId, votes: Vec<Vote>) -> Self {
        VoteVector { voter, votes }
    }

    /// An all-`Unknown` vector — what the leader records for members that did
    /// not reply within the collection window (§IV-C step 4).
    pub fn all_unknown(voter: NodeId, len: usize) -> Self {
        VoteVector {
            voter,
            votes: vec![Vote::Unknown; len],
        }
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> u64 {
        4 + self.votes.len() as u64
    }
}

/// The leader's collected `V List`: every member's vote vector over one `TXList`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VoteList {
    /// Transaction ids, in the order votes refer to them.
    pub tx_ids: Vec<TxId>,
    /// All members' vote vectors.
    pub votes: Vec<VoteVector>,
}

/// The outcome of tallying a [`VoteList`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tally {
    /// Transactions with a strict majority of `Yes` votes (the `TXdecSET`),
    /// by index into `tx_ids`.
    pub accepted_indices: Vec<usize>,
    /// The consensus decision vector `u`: `+1` for accepted, `-1` for rejected.
    pub decision: Vec<i8>,
    /// `Yes` counts per transaction (for diagnostics and tests).
    pub yes_counts: Vec<usize>,
}

impl VoteList {
    /// Creates a vote list for a transaction ordering.
    pub fn new(tx_ids: Vec<TxId>) -> Self {
        VoteList {
            tx_ids,
            votes: Vec::new(),
        }
    }

    /// Records a member's vote vector. Vectors of the wrong length are rejected
    /// (they would skew the tally); duplicate voters replace their earlier vote.
    pub fn record(&mut self, vector: VoteVector) -> bool {
        if vector.votes.len() != self.tx_ids.len() {
            return false;
        }
        if let Some(existing) = self.votes.iter_mut().find(|v| v.voter == vector.voter) {
            *existing = vector;
        } else {
            self.votes.push(vector);
        }
        true
    }

    /// Number of members that have voted.
    pub fn voter_count(&self) -> usize {
        self.votes.len()
    }

    /// Tallies the votes: a transaction enters `TXdecSET` iff strictly more than
    /// `committee_size / 2` members voted `Yes` (Algorithm 5, line 14).
    pub fn tally(&self, committee_size: usize) -> Tally {
        let mut yes_counts = vec![0usize; self.tx_ids.len()];
        for vector in &self.votes {
            for (k, vote) in vector.votes.iter().enumerate() {
                if *vote == Vote::Yes {
                    yes_counts[k] += 1;
                }
            }
        }
        let mut accepted_indices = Vec::new();
        let mut decision = Vec::with_capacity(self.tx_ids.len());
        for (k, &yes) in yes_counts.iter().enumerate() {
            if crate::transition::tx_accepted(yes, committee_size) {
                accepted_indices.push(k);
                decision.push(1);
            } else {
                decision.push(-1);
            }
        }
        Tally {
            accepted_indices,
            decision,
            yes_counts,
        }
    }

    /// Approximate wire size in bytes (ids plus one byte per vote).
    pub fn wire_size(&self) -> u64 {
        self.tx_ids.len() as u64 * 32 + self.votes.iter().map(|v| v.wire_size()).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cycledger_crypto::sha256::hash_parts;
    use proptest::prelude::*;

    fn ids(n: usize) -> Vec<TxId> {
        (0..n)
            .map(|i| hash_parts(&[b"tx", &(i as u64).to_be_bytes()]))
            .collect()
    }

    #[test]
    fn majority_yes_enters_txdecset() {
        let mut list = VoteList::new(ids(3));
        // Committee of 5: tx0 gets 3 yes, tx1 gets 2 yes, tx2 gets 0.
        let votes = [
            vec![Vote::Yes, Vote::Yes, Vote::No],
            vec![Vote::Yes, Vote::Yes, Vote::No],
            vec![Vote::Yes, Vote::No, Vote::Unknown],
            vec![Vote::No, Vote::Unknown, Vote::No],
            vec![Vote::Unknown, Vote::No, Vote::No],
        ];
        for (i, v) in votes.into_iter().enumerate() {
            assert!(list.record(VoteVector::new(NodeId(i as u32), v)));
        }
        let tally = list.tally(5);
        assert_eq!(tally.accepted_indices, vec![0]);
        assert_eq!(tally.decision, vec![1, -1, -1]);
        assert_eq!(tally.yes_counts, vec![3, 2, 0]);
    }

    #[test]
    fn exactly_half_is_not_a_majority() {
        let mut list = VoteList::new(ids(1));
        for i in 0..2 {
            list.record(VoteVector::new(NodeId(i), vec![Vote::Yes]));
        }
        for i in 2..4 {
            list.record(VoteVector::new(NodeId(i), vec![Vote::No]));
        }
        // Committee of 4, 2 yes votes: 2*2 > 4 is false.
        let tally = list.tally(4);
        assert!(tally.accepted_indices.is_empty());
        assert_eq!(tally.decision, vec![-1]);
    }

    #[test]
    fn wrong_length_vote_rejected_and_duplicates_replace() {
        let mut list = VoteList::new(ids(2));
        assert!(!list.record(VoteVector::new(NodeId(0), vec![Vote::Yes])));
        assert!(list.record(VoteVector::new(NodeId(0), vec![Vote::Yes, Vote::Yes])));
        assert!(list.record(VoteVector::new(NodeId(0), vec![Vote::No, Vote::No])));
        assert_eq!(list.voter_count(), 1);
        let tally = list.tally(1);
        assert_eq!(tally.yes_counts, vec![0, 0]);
    }

    #[test]
    fn all_unknown_vector_counts_nothing() {
        let mut list = VoteList::new(ids(3));
        list.record(VoteVector::all_unknown(NodeId(0), 3));
        list.record(VoteVector::new(NodeId(1), vec![Vote::Yes; 3]));
        let tally = list.tally(2);
        // 1 yes out of committee of 2 is not a strict majority... 1*2 > 2 false.
        assert!(tally.accepted_indices.is_empty());
        let tally = list.tally(1);
        assert_eq!(tally.accepted_indices, vec![0, 1, 2]);
    }

    #[test]
    fn vote_numeric_encoding() {
        assert_eq!(Vote::Yes.as_i8(), 1);
        assert_eq!(Vote::No.as_i8(), -1);
        assert_eq!(Vote::Unknown.as_i8(), 0);
    }

    #[test]
    fn wire_sizes() {
        let mut list = VoteList::new(ids(4));
        list.record(VoteVector::new(NodeId(0), vec![Vote::Yes; 4]));
        assert_eq!(list.wire_size(), 4 * 32 + 4 + 4);
        assert_eq!(VoteVector::all_unknown(NodeId(1), 10).wire_size(), 14);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_tally_matches_manual_count(
            votes in prop::collection::vec(prop::collection::vec(0u8..3, 5), 1..12)
        ) {
            let committee_size = votes.len();
            let mut list = VoteList::new(ids(5));
            for (i, row) in votes.iter().enumerate() {
                let vector: Vec<Vote> = row
                    .iter()
                    .map(|v| match v { 0 => Vote::Yes, 1 => Vote::No, _ => Vote::Unknown })
                    .collect();
                list.record(VoteVector::new(NodeId(i as u32), vector));
            }
            let tally = list.tally(committee_size);
            for k in 0..5 {
                let yes = votes.iter().filter(|row| row[k] == 0).count();
                prop_assert_eq!(tally.yes_counts[k], yes);
                prop_assert_eq!(tally.decision[k] == 1, yes * 2 > committee_size);
                prop_assert_eq!(tally.accepted_indices.contains(&k), yes * 2 > committee_size);
            }
        }
    }
}
