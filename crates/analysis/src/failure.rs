//! Protocol-level failure probabilities (Table I row 4, §V-B/§V-C).
//!
//! Combines the per-committee hypergeometric tail with the partial-set bound and
//! the union bound over `m` committees, for CycLedger and for the three
//! comparison protocols of Table I:
//!
//! | protocol   | per-round failure probability      |
//! |------------|------------------------------------|
//! | Elastico   | `Ω(m·e^{−c/40})`                   |
//! | OmniLedger | `O(m·e^{−c/40})`                   |
//! | RapidChain | `m·e^{−c/12} + (1/2)^{27}`         |
//! | CycLedger  | `m·(e^{−c/12} + (1/3)^{λ})`        |

use crate::hypergeometric::{committee_failure_probability, simplified_bound};

/// Probability that a partial set of size `lambda` contains **no** honest node
/// when at most a `1/3` fraction of validators is malicious: `(1/3)^λ` (§V-C).
pub fn partial_set_failure_probability(lambda: u32) -> f64 {
    (1.0f64 / 3.0).powi(lambda as i32)
}

/// Union bound over `m` independent-committee events each failing with
/// probability `p` (clamped to 1).
pub fn union_bound(m: u64, p: f64) -> f64 {
    (m as f64 * p).min(1.0)
}

/// CycLedger's per-round failure bound `m·(e^{−c/12} + (1/3)^λ)` (Table I).
pub fn cycledger_round_failure(m: u64, c: u64, lambda: u32) -> f64 {
    union_bound(
        m,
        simplified_bound(c) + partial_set_failure_probability(lambda),
    )
}

/// CycLedger's per-round failure computed from the *exact* hypergeometric tail
/// instead of the Chernoff bound (used by the Fig. 5 bench to show both curves).
pub fn cycledger_round_failure_exact(n: u64, t: u64, m: u64, c: u64, lambda: u32) -> f64 {
    union_bound(
        m,
        committee_failure_probability(n, t, c) + partial_set_failure_probability(lambda),
    )
}

/// RapidChain's per-round failure `m·e^{−c/12} + (1/2)^{27}` (Table I).
pub fn rapidchain_round_failure(m: u64, c: u64) -> f64 {
    (union_bound(m, simplified_bound(c)) + 0.5f64.powi(27)).min(1.0)
}

/// Elastico / OmniLedger per-round failure `m·e^{−c/40}` (they tolerate only
/// `t < n/4`, which weakens the exponent to `c/40` — Table I).
pub fn quarter_resilient_round_failure(m: u64, c: u64) -> f64 {
    union_bound(m, (-(c as f64) / 40.0).exp())
}

/// One row of the failure-probability comparison used by the Table I bench.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailureComparison {
    /// Committee size used for every protocol.
    pub committee_size: u64,
    /// Number of committees.
    pub committees: u64,
    /// Partial-set size λ.
    pub lambda: u32,
    /// Elastico (lower bound shape).
    pub elastico: f64,
    /// OmniLedger (upper bound shape, same exponent).
    pub omniledger: f64,
    /// RapidChain.
    pub rapidchain: f64,
    /// CycLedger.
    pub cycledger: f64,
}

/// Builds the failure comparison for one `(m, c, λ)` configuration.
pub fn compare_protocols(m: u64, c: u64, lambda: u32) -> FailureComparison {
    FailureComparison {
        committee_size: c,
        committees: m,
        lambda,
        elastico: quarter_resilient_round_failure(m, c),
        omniledger: quarter_resilient_round_failure(m, c),
        rapidchain: rapidchain_round_failure(m, c),
        cycledger: cycledger_round_failure(m, c, lambda),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_set_paper_spot_values() {
        // §V-C: (1/3)^40 < 8e-20, and the union bound over 20 committees stays
        // below 2e-18.
        let p = partial_set_failure_probability(40);
        assert!(p < 8.3e-20, "p = {p}"); // paper rounds (1/3)^40 ≈ 8.2e-20 down to "8×10⁻²⁰"
        assert!(union_bound(20, p) < 2e-18);
        assert!(partial_set_failure_probability(0) == 1.0);
        assert!(partial_set_failure_probability(10) > partial_set_failure_probability(20));
    }

    #[test]
    fn union_bound_clamps_at_one() {
        assert_eq!(union_bound(1000, 0.5), 1.0);
        assert!((union_bound(10, 1e-3) - 1e-2).abs() < 1e-12);
        assert_eq!(union_bound(0, 0.9), 0.0);
    }

    #[test]
    fn paper_union_bound_spot_value() {
        // §V-B: for n = 2000, t = 666, c = 240 the paper reports a per-committee
        // failure below 2.1e-9 and a union bound over m ≤ 20 committees below
        // 5e-8. The exact tail reproduces the same order of magnitude.
        let per_committee = committee_failure_probability(2000, 666, 240);
        assert!(union_bound(20, per_committee) < 2e-7);
    }

    #[test]
    fn cycledger_failure_decreases_with_c_and_lambda() {
        let base = cycledger_round_failure(16, 120, 40);
        assert!(cycledger_round_failure(16, 240, 40) < base);
        assert!(cycledger_round_failure(16, 120, 60) <= base);
        // The λ term dominates once c is large.
        let large_c = cycledger_round_failure(16, 2000, 10);
        assert!(large_c > cycledger_round_failure(16, 2000, 40));
    }

    #[test]
    fn security_target_met_at_paper_parameters() {
        // With c = 240, λ = 40, m = 20 the round-failure bound
        // m·(e^{-c/12} + (1/3)^λ) ≈ 20·e^{-20} ≈ 4e-8, i.e. negligible for
        // practical purposes; the λ-term contributes nothing at λ = 40.
        let p = cycledger_round_failure(20, 240, 40);
        assert!(p < 1e-7, "p = {p}");
        assert!(
            (p - 20.0 * simplified_bound(240)).abs() < 1e-12,
            "partial-set term must be negligible at λ = 40"
        );
    }

    #[test]
    fn comparison_orders_protocols_as_in_table1() {
        // At equal committee size, the 1/4-resilient protocols have a weaker
        // exponent, so their failure probability is higher than RapidChain's and
        // CycLedger's for moderate c.
        let cmp = compare_protocols(16, 200, 40);
        assert!(cmp.elastico > cmp.rapidchain);
        assert!(cmp.elastico > cmp.cycledger);
        assert_eq!(cmp.elastico, cmp.omniledger);
        // CycLedger ≈ RapidChain without RapidChain's (1/2)^27 floor: for large
        // c, RapidChain's floor dominates and CycLedger is strictly better.
        let cmp_large = compare_protocols(16, 1200, 40);
        assert!(cmp_large.cycledger < cmp_large.rapidchain);
    }

    #[test]
    fn exact_variant_tracks_the_bound() {
        // The e^{-c/12} expression is an excellent approximation of the exact
        // hypergeometric tail in the paper's regime; the two stay within a small
        // constant factor of each other at the paper's parameters.
        let bound = cycledger_round_failure(20, 240, 40);
        let exact = cycledger_round_failure_exact(2000, 666, 20, 240, 40);
        assert!(exact <= bound * 5.0, "exact {exact} vs bound {bound}");
        assert!(bound <= exact * 5.0, "exact {exact} vs bound {bound}");
    }
}
