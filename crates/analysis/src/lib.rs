//! # cycledger-analysis
//!
//! Closed-form analysis mirroring the paper's evaluation:
//!
//! * [`hypergeometric`] — exact hypergeometric tails, KL-divergence bounds and
//!   Monte-Carlo cross-checks behind Fig. 5 and Eq. 3/4.
//! * [`failure`] — per-round failure probabilities of CycLedger and the Table I
//!   comparison protocols, partial-set bounds, union bounds (§V-B, §V-C).
//! * [`complexity`] — Table II per-phase/per-role complexity predictions and the
//!   Table I storage/complexity rows, used by the benches to label and check the
//!   measured scaling shapes.

#![warn(missing_docs)]

pub mod complexity;
pub mod failure;
pub mod hypergeometric;

pub use complexity::{
    table1_complexity, table1_storage, table2_prediction, Prediction, RoleClass, SystemSize,
};
pub use failure::{
    compare_protocols, cycledger_round_failure, cycledger_round_failure_exact,
    partial_set_failure_probability, quarter_resilient_round_failure, rapidchain_round_failure,
    union_bound, FailureComparison,
};
pub use hypergeometric::{
    committee_failure_probability, hypergeometric_pmf, hypergeometric_tail, kl_bound,
    kl_divergence, ln_choose, ln_factorial, monte_carlo_failure, simplified_bound,
};
