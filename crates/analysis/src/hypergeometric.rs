//! Hypergeometric committee-sampling analysis (Eq. 3/4, Fig. 5).
//!
//! Committees are sampled uniformly without replacement from the `n` nodes, of
//! which `t < n/3` are malicious. A committee of size `c` is *insecure* when at
//! least half of its members are malicious; the probability of that event is the
//! hypergeometric tail
//!
//! ```text
//! Pr[X ≥ c/2] = Σ_{x=⌈c/2⌉}^{c} C(t, x)·C(n−t, c−x) / C(n, c)
//! ```
//!
//! which the paper bounds by `exp(−D(1/2 ‖ f)·c) ≤ exp(−c/12)` using the
//! Kullback–Leibler divergence (Eq. 3–4). This module computes the exact tail
//! (in log space, so `n` in the thousands is no problem), the KL bound, and a
//! Monte-Carlo estimate used by tests to cross-check the closed form.

/// Natural log of `k!` via the log-gamma function (Lanczos-free: straight
/// summation is exact enough and fast for the sizes we use, with a Stirling
/// fallback for very large `k`).
pub fn ln_factorial(k: u64) -> f64 {
    if k < 2 {
        return 0.0;
    }
    if k <= 10_000 {
        (2..=k).map(|i| (i as f64).ln()).sum()
    } else {
        // Stirling series with the 1/(12k) correction.
        let kf = k as f64;
        kf * kf.ln() - kf + 0.5 * (2.0 * std::f64::consts::PI * kf).ln() + 1.0 / (12.0 * kf)
    }
}

/// Natural log of the binomial coefficient `C(n, k)`; `-inf` when `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Probability mass `Pr[X = x]` of the hypergeometric distribution with
/// population `n`, `t` marked items, and sample size `c`.
pub fn hypergeometric_pmf(n: u64, t: u64, c: u64, x: u64) -> f64 {
    if x > t || x > c || c > n || c - x > n - t {
        return 0.0;
    }
    (ln_choose(t, x) + ln_choose(n - t, c - x) - ln_choose(n, c)).exp()
}

/// Tail probability `Pr[X ≥ k]` of the same distribution.
pub fn hypergeometric_tail(n: u64, t: u64, c: u64, k: u64) -> f64 {
    let upper = t.min(c);
    if k > upper {
        return 0.0;
    }
    let mut sum = 0.0;
    for x in k..=upper {
        sum += hypergeometric_pmf(n, t, c, x);
    }
    sum.min(1.0)
}

/// Probability that a uniformly sampled committee of size `c` is insecure
/// (at least half malicious), i.e. `Pr[X ≥ ⌈c/2⌉]`.
pub fn committee_failure_probability(n: u64, t: u64, c: u64) -> f64 {
    hypergeometric_tail(n, t, c, c.div_ceil(2))
}

/// Kullback–Leibler divergence `D(a ‖ b)` between two Bernoulli parameters.
pub fn kl_divergence(a: f64, b: f64) -> f64 {
    assert!((0.0..=1.0).contains(&a) && (0.0..1.0).contains(&b) && b > 0.0);
    let term = |p: f64, q: f64| if p == 0.0 { 0.0 } else { p * (p / q).ln() };
    term(a, b) + term(1.0 - a, 1.0 - b)
}

/// The paper's Chernoff-style bound `exp(−D(1/2 ‖ f)·c)` with
/// `f = t/n + 1/c` (Eq. 3), clamped to 1.
pub fn kl_bound(n: u64, t: u64, c: u64) -> f64 {
    let f = (t as f64 / n as f64 + 1.0 / c as f64).min(0.999_999);
    (-kl_divergence(0.5, f) * c as f64).exp().min(1.0)
}

/// The simplified bound `exp(−c/12)` of Eq. 4 (valid for `t < n/3`).
pub fn simplified_bound(c: u64) -> f64 {
    (-(c as f64) / 12.0).exp()
}

/// Monte-Carlo estimate of the committee failure probability, used by tests and
/// the Fig. 5 bench to cross-check the closed form. Sampling is a
/// Fisher–Yates-free sequential draw (hypergeometric by construction) driven by
/// a caller-supplied RNG closure returning uniform values in `[0, 1)`.
pub fn monte_carlo_failure<R: FnMut() -> f64>(
    n: u64,
    t: u64,
    c: u64,
    trials: u64,
    mut uniform: R,
) -> f64 {
    let mut failures = 0u64;
    for _ in 0..trials {
        let mut remaining_bad = t;
        let mut remaining_total = n;
        let mut bad_in_committee = 0u64;
        for _ in 0..c {
            let p_bad = remaining_bad as f64 / remaining_total as f64;
            if uniform() < p_bad {
                bad_in_committee += 1;
                remaining_bad -= 1;
            }
            remaining_total -= 1;
        }
        if 2 * bad_in_committee >= c {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_matches_small_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-9);
        assert!((ln_factorial(10) - 3_628_800f64.ln()).abs() < 1e-9);
        // Stirling branch agrees with the exact branch to good precision.
        let exact: f64 = (2..=10_001u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(10_001) - exact).abs() / exact < 1e-9);
    }

    #[test]
    fn ln_choose_matches_small_values() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-9);
        assert!((ln_choose(10, 5) - 252f64.ln()).abs() < 1e-9);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        assert_eq!(ln_choose(7, 0), 0.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        let (n, t, c) = (50, 17, 12);
        let total: f64 = (0..=c).map(|x| hypergeometric_pmf(n, t, c, x)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn pmf_out_of_support_is_zero() {
        assert_eq!(hypergeometric_pmf(10, 3, 5, 4), 0.0); // more bad than exist
        assert_eq!(hypergeometric_pmf(10, 9, 5, 0), 0.0); // cannot avoid bad: n-t=1 < c-x=5
        assert_eq!(hypergeometric_pmf(10, 3, 20, 1), 0.0); // sample larger than population
    }

    #[test]
    fn tail_is_monotone_in_threshold() {
        let (n, t, c) = (2000, 666, 100);
        let mut prev = 1.1;
        for k in 0..=c {
            let tail = hypergeometric_tail(n, t, c, k);
            assert!(tail <= prev + 1e-12);
            prev = tail;
        }
        assert!((hypergeometric_tail(n, t, c, 0) - 1.0).abs() < 1e-9);
        assert_eq!(hypergeometric_tail(n, t, c, c + 1), 0.0);
    }

    #[test]
    fn paper_spot_value_c240() {
        // §V-B: with n = 2000, t = 666, c = 240 the paper reports a failure
        // probability below 2.1e-9 (numerically equal to e^{-c/12} = e^{-20}).
        // The exact hypergeometric tail lands in the same order of magnitude.
        let p = committee_failure_probability(2000, 666, 240);
        assert!(p < 1e-8, "p = {p}");
        assert!(p > 1e-12, "p = {p}");
    }

    #[test]
    fn failure_probability_decreases_with_committee_size() {
        let mut prev = 1.0;
        for c in [40u64, 80, 120, 160, 200, 240, 280] {
            let p = committee_failure_probability(2000, 666, c);
            assert!(p < prev, "c = {c}: {p} !< {prev}");
            prev = p;
        }
    }

    #[test]
    fn kl_divergence_properties() {
        assert!(kl_divergence(0.5, 0.5).abs() < 1e-12);
        assert!(kl_divergence(0.5, 0.34) > 0.0);
        assert!(kl_divergence(0.0, 0.5) > 0.0);
    }

    #[test]
    fn kl_bound_dominates_exact_probability() {
        // The Chernoff/Hoeffding bound exp(-D(1/2‖f)·c) (natural-log KL) is a
        // genuine upper bound on the exact tail for the paper's regime t < n/3.
        // (The paper's further simplification to e^{-c/12} uses a base-2 KL
        // estimate and is an approximation rather than a strict bound; the
        // Fig. 5 bench plots both curves next to the exact tail.)
        for c in [60u64, 120, 240, 360] {
            let exact = committee_failure_probability(2000, 666, c);
            let kl = kl_bound(2000, 666, c);
            assert!(exact <= kl * 1.0001, "c={c}: exact {exact} > KL bound {kl}");
            assert!(simplified_bound(c) > 0.0 && simplified_bound(c) < 1.0);
        }
    }

    #[test]
    fn monte_carlo_agrees_with_exact_at_small_committee() {
        // Small committee so the failure probability is large enough to estimate.
        let (n, t, c) = (200u64, 66u64, 11u64);
        let exact = committee_failure_probability(n, t, c);
        // Deterministic LCG uniform source.
        let mut state = 0x12345678u64;
        let estimate = monte_carlo_failure(n, t, c, 20_000, move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        });
        assert!(
            (estimate - exact).abs() < 0.02,
            "estimate {estimate} vs exact {exact}"
        );
    }
}
