//! Asymptotic complexity predictions (Table I row 2–3, Table II).
//!
//! Table II gives, for every protocol phase and every role, the expected
//! communication/computation and storage complexity as a function of `n` (total
//! nodes), `m` (committees) and `c` (committee size, `n = m·c`). The benchmark
//! harness measures the same quantities on the simulator and uses these
//! predictions to label and sanity-check the scaling shape (who grows with `c`,
//! who with `m²`, who with `n`).

use cycledger_net::metrics::Phase;

/// The three roles Table II distinguishes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RoleClass {
    /// Ordinary committee members.
    CommonMember,
    /// Leaders and partial-set members ("key members").
    KeyMember,
    /// Referee committee members.
    Referee,
}

impl RoleClass {
    /// All role classes in Table II column order.
    pub const ALL: [RoleClass; 3] = [
        RoleClass::CommonMember,
        RoleClass::KeyMember,
        RoleClass::Referee,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            RoleClass::CommonMember => "Common Members",
            RoleClass::KeyMember => "Leaders & Partial Set Members",
            RoleClass::Referee => "C_R Members",
        }
    }
}

/// System size parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemSize {
    /// Total nodes `n` (excluding the referee committee is a modelling detail
    /// the asymptotics ignore; the paper uses `n = m·c`).
    pub n: u64,
    /// Number of committees `m`.
    pub m: u64,
    /// Expected committee size `c`.
    pub c: u64,
}

impl SystemSize {
    /// Builds a size from `m` and `c` (`n = m·c`).
    pub fn from_committees(m: u64, c: u64) -> Self {
        SystemSize { n: m * c, m, c }
    }
}

/// An asymptotic prediction in "units" (message-slots or stored items); the
/// benches compare *ratios* of these across system sizes against measured
/// ratios, so the constant factor is irrelevant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Predicted communication/computation cost.
    pub communication: f64,
    /// Predicted storage cost.
    pub storage: f64,
}

/// Table II: predicted complexity for `(phase, role)` at a given system size.
/// Phases that do not involve a role (marked "-" in the paper) predict zero.
pub fn table2_prediction(phase: Phase, role: RoleClass, size: SystemSize) -> Prediction {
    let n = size.n as f64;
    let m = size.m as f64;
    let c = size.c as f64;
    let p = |communication: f64, storage: f64| Prediction {
        communication,
        storage,
    };
    use Phase::*;
    use RoleClass::*;
    match (phase, role) {
        (CommitteeConfiguration, CommonMember) => p(c, c),
        (CommitteeConfiguration, KeyMember) => p(c * c, c * c),
        (CommitteeConfiguration, Referee) => p(0.0, 0.0),

        (SemiCommitmentExchange, CommonMember) => p(0.0, 0.0),
        (SemiCommitmentExchange, KeyMember) => p(c, m),
        (SemiCommitmentExchange, Referee) => p(m * m, m),

        (IntraCommitteeConsensus, CommonMember) => p(c, 1.0),
        (IntraCommitteeConsensus, KeyMember) => p(c, c),
        (IntraCommitteeConsensus, Referee) => p(n, n),

        (InterCommitteeConsensus, CommonMember) => p(m, 1.0),
        (InterCommitteeConsensus, KeyMember) => p(n, 1.0),
        (InterCommitteeConsensus, Referee) => p(n, n),

        (ReputationUpdate, CommonMember) => p(c, 1.0),
        (ReputationUpdate, KeyMember) => p(c, c),
        (ReputationUpdate, Referee) => p(n, n),

        (KeyMemberSelection, CommonMember) => p(0.0, 0.0),
        (KeyMemberSelection, KeyMember) => p(0.0, 0.0),
        (KeyMemberSelection, Referee) => p(n, n),

        (BlockGeneration, CommonMember) => p(m, c),
        (BlockGeneration, KeyMember) => p(n, c),
        (BlockGeneration, Referee) => p(m * n, n),

        // Recovery is not a Table II row; it is an occasional event whose cost is
        // O(c) inside the committee plus O(m) notification fan-out from C_R.
        (Recovery, CommonMember) => p(c, 1.0),
        (Recovery, KeyMember) => p(c, c),
        (Recovery, Referee) => p(m, 1.0),
    }
}

/// Table I storage row: per-node storage of each protocol.
pub fn table1_storage(n: u64, m: u64, c: u64) -> [(&'static str, f64); 4] {
    let (n, m, c) = (n as f64, m as f64, c as f64);
    [
        ("Elastico", n),
        ("OmniLedger", c + m.log2().max(0.0)),
        ("RapidChain", c),
        ("CycLedger", m * m / n + c),
    ]
}

/// Table I complexity row: per-transaction communication complexity of each
/// protocol (all are linear in `n`; Elastico's is a lower bound Ω(n)).
pub fn table1_complexity(n: u64) -> [(&'static str, f64); 4] {
    let n = n as f64;
    [
        ("Elastico", n),
        ("OmniLedger", n),
        ("RapidChain", n),
        ("CycLedger", n),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_size_from_committees() {
        let s = SystemSize::from_committees(10, 200);
        assert_eq!(s.n, 2000);
        assert_eq!(s.m, 10);
        assert_eq!(s.c, 200);
    }

    #[test]
    fn role_labels_distinct() {
        let labels: std::collections::HashSet<_> =
            RoleClass::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn referee_semi_commitment_scales_with_m_squared() {
        // Doubling the number of committees at fixed c should quadruple the
        // referee's semi-commitment communication (the O(m²) Table II entry).
        let small = table2_prediction(
            Phase::SemiCommitmentExchange,
            RoleClass::Referee,
            SystemSize::from_committees(8, 100),
        );
        let large = table2_prediction(
            Phase::SemiCommitmentExchange,
            RoleClass::Referee,
            SystemSize::from_committees(16, 100),
        );
        assert!((large.communication / small.communication - 4.0).abs() < 1e-9);
        assert!((large.storage / small.storage - 2.0).abs() < 1e-9);
    }

    #[test]
    fn common_member_costs_scale_with_c_not_n() {
        // For common members, intra-committee consensus cost depends on c only.
        let a = table2_prediction(
            Phase::IntraCommitteeConsensus,
            RoleClass::CommonMember,
            SystemSize::from_committees(8, 100),
        );
        let b = table2_prediction(
            Phase::IntraCommitteeConsensus,
            RoleClass::CommonMember,
            SystemSize::from_committees(32, 100),
        );
        assert_eq!(
            a, b,
            "growing m at fixed c must not change a common member's cost"
        );
    }

    #[test]
    fn block_generation_dominates_for_referee() {
        let s = SystemSize::from_committees(16, 120);
        let bg = table2_prediction(Phase::BlockGeneration, RoleClass::Referee, s);
        for phase in Phase::ALL {
            let p = table2_prediction(phase, RoleClass::Referee, s);
            assert!(bg.communication >= p.communication, "{phase:?}");
        }
    }

    #[test]
    fn zero_rows_match_paper_dashes() {
        let s = SystemSize::from_committees(8, 64);
        assert_eq!(
            table2_prediction(Phase::CommitteeConfiguration, RoleClass::Referee, s),
            Prediction {
                communication: 0.0,
                storage: 0.0
            }
        );
        assert_eq!(
            table2_prediction(Phase::SemiCommitmentExchange, RoleClass::CommonMember, s),
            Prediction {
                communication: 0.0,
                storage: 0.0
            }
        );
        assert_eq!(
            table2_prediction(Phase::KeyMemberSelection, RoleClass::CommonMember, s),
            Prediction {
                communication: 0.0,
                storage: 0.0
            }
        );
    }

    #[test]
    fn table1_storage_shapes() {
        // CycLedger's per-node storage O(m²/n + c) is far below Elastico's O(n)
        // and close to RapidChain's O(c) for realistic parameters.
        let rows = table1_storage(2000, 10, 200);
        let get = |name: &str| rows.iter().find(|(p, _)| *p == name).unwrap().1;
        assert!(get("CycLedger") < get("Elastico") / 2.0);
        assert!(get("CycLedger") < 2.0 * get("RapidChain"));
        assert!(get("OmniLedger") >= get("RapidChain"));
        // All protocols have Θ(n) communication complexity.
        let comm = table1_complexity(2000);
        assert!(comm.iter().all(|(_, v)| (*v - 2000.0).abs() < 1e-9));
    }
}
