//! Per-shard UTXO sets and the authentication function `V`.
//!
//! Each committee maintains the UTXOs owned by accounts of its shard (§III-D).
//! Validation of a transaction therefore splits naturally:
//!
//! * every *input* must exist unspent in the UTXO set of the shard that owns it
//!   (checked by that shard's committee), and
//! * the transaction as a whole must conserve value (`Σ inputs ≥ Σ outputs`) and
//!   must not spend the same outpoint twice.
//!
//! For intra-shard transactions one committee checks everything; for cross-shard
//! transactions each involved committee checks its own inputs and the referee
//! committee combines the verdicts.

use std::sync::atomic::{AtomicU64, Ordering};

use cycledger_crypto::fxhash::{FxHashMap, FxHashSet};
use cycledger_crypto::sha256::Digest;
use cycledger_crypto::smt::StateProof;

use crate::store::{StateBackend, Store};
use crate::transaction::{OutPoint, Transaction, TxOutput};

/// Why a transaction failed validation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValidationError {
    /// An input refers to an outpoint this shard does not hold (missing or
    /// already spent).
    MissingInput,
    /// The same outpoint appears twice among the inputs.
    DoubleSpendWithinTx,
    /// An input's claimed owner or amount disagrees with the UTXO set.
    InputMismatch,
    /// Outputs exceed inputs.
    ValueCreated,
    /// The transaction has no outputs (disallowed for non-genesis payments).
    Empty,
}

/// The UTXO set of a single shard.
///
/// Entries live behind the pluggable [`Store`]: by default the seed's flat
/// [`FxHashMap`] (outpoints are SHA-256 digests the protocol itself
/// admitted, not attacker-chosen map keys, so the SipHash DoS defence of
/// the std hasher buys nothing on this per-input-lookup hot path), or the
/// authenticated sparse-Merkle backend when the simulation asks for state
/// roots. Nothing protocol-visible iterates the store unordered —
/// [`UtxoSet::sorted_outpoints`] sorts first.
#[derive(Debug, Default)]
pub struct UtxoSet {
    /// Which shard this set belongs to.
    shard: usize,
    /// Number of shards in the system (for ownership routing).
    num_shards: usize,
    store: Store,
    /// Maintained Σ amount over the held entries; `total_value` is called at
    /// report time, where a full-map scan would be a 10^7-entry walk at
    /// target scale.
    total: u64,
    /// Counts calls to [`UtxoSet::sorted_outpoints`] — the call is O(n log n)
    /// and restricted to report-time; a regression test pins that `apply` and
    /// `validate` never touch it.
    sorted_queries: AtomicU64,
}

impl Clone for UtxoSet {
    fn clone(&self) -> Self {
        UtxoSet {
            shard: self.shard,
            num_shards: self.num_shards,
            store: self.store.clone(),
            total: self.total,
            sorted_queries: AtomicU64::new(self.sorted_queries.load(Ordering::Relaxed)),
        }
    }
}

impl UtxoSet {
    /// Creates an empty UTXO set for `shard` out of `num_shards`.
    pub fn new(shard: usize, num_shards: usize) -> Self {
        Self::with_capacity(shard, num_shards, 0)
    }

    /// Creates an empty UTXO set pre-sized for `capacity` outpoints, so the
    /// steady-state working set never pays rehash-and-move churn.
    pub fn with_capacity(shard: usize, num_shards: usize, capacity: usize) -> Self {
        Self::with_backend(shard, num_shards, capacity, StateBackend::Map)
    }

    /// Creates an empty UTXO set on the chosen state backend.
    pub fn with_backend(
        shard: usize,
        num_shards: usize,
        capacity: usize,
        backend: StateBackend,
    ) -> Self {
        assert!(num_shards > 0 && shard < num_shards);
        UtxoSet {
            shard,
            num_shards,
            store: Store::with_capacity(backend, capacity),
            total: 0,
            sorted_queries: AtomicU64::new(0),
        }
    }

    /// The shard index this set serves.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Which state backend this set runs on.
    pub fn backend(&self) -> StateBackend {
        self.store.backend()
    }

    /// Number of UTXOs held.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True if no UTXOs are held.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Total value held by this shard — O(1), maintained on every
    /// credit/spend.
    pub fn total_value(&self) -> u64 {
        #[cfg(debug_assertions)]
        {
            let mut scanned = 0u64;
            self.store.for_each(&mut |_, o| scanned += o.amount);
            debug_assert_eq!(
                scanned, self.total,
                "maintained total_value diverged from the full scan"
            );
        }
        self.total
    }

    /// Looks up an outpoint.
    pub fn get(&self, outpoint: &OutPoint) -> Option<&TxOutput> {
        self.store.get(outpoint)
    }

    /// Inserts an output if its owner belongs to this shard; returns whether it
    /// was inserted. Used both at genesis and when applying a block.
    pub fn credit(&mut self, outpoint: OutPoint, output: TxOutput) -> bool {
        if output.owner.shard(self.num_shards) != self.shard {
            return false;
        }
        if let Some(old) = self.store.insert(outpoint, output) {
            self.total -= old.amount;
        }
        self.total += output.amount;
        true
    }

    /// Seals the writes applied since the previous commit into a versioned
    /// state root recorded for `round`. Returns the root on authenticated
    /// backends, `None` on the flat map.
    pub fn commit_round(&mut self, round: u64) -> Option<Digest> {
        self.store.commit(round)
    }

    /// Folds genesis credits into the authenticated tree without recording a
    /// round version (no-op on the flat map).
    pub fn commit_genesis(&mut self) -> Option<Digest> {
        match &mut self.store {
            Store::Map(_) => None,
            Store::Smt(smt) => Some(smt.commit_genesis()),
        }
    }

    /// The most recently committed state root, if the backend has one.
    pub fn state_root(&self) -> Option<Digest> {
        self.store.state_root()
    }

    /// The root committed at the latest round `<= round`, if any.
    pub fn root_at_round(&self, round: u64) -> Option<Digest> {
        self.store.root_at_round(round)
    }

    /// An inclusion/exclusion proof for `outpoint` against the latest
    /// committed root (`None` on unauthenticated backends).
    pub fn prove(&self, outpoint: &OutPoint) -> Option<StateProof> {
        self.store.prove(outpoint)
    }

    /// Validates the parts of `tx` that concern this shard (the paper's `V`).
    ///
    /// Only inputs owned by this shard are checked against the set; inputs owned
    /// by other shards are ignored here and validated by their own committees.
    /// Structural checks (double-spend-within-tx, value conservation, non-empty
    /// outputs) are performed by every shard since they need no state.
    pub fn validate(&self, tx: &Transaction) -> Result<(), ValidationError> {
        validate_structural(tx)?;
        // Stateful: inputs owned by this shard must exist and match.
        for input in tx.inputs() {
            if input.owner.shard(self.num_shards) != self.shard {
                continue;
            }
            match self.store.get(&input.outpoint) {
                None => return Err(ValidationError::MissingInput),
                Some(existing) => {
                    if existing.owner != input.owner || existing.amount != input.amount {
                        return Err(ValidationError::InputMismatch);
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies a validated transaction: removes the inputs this shard owns and
    /// credits the outputs whose owners live in this shard.
    ///
    /// Returns the number of UTXOs spent plus created locally. The caller is
    /// responsible for only applying transactions that passed [`Self::validate`]
    /// on every involved shard (that is exactly what block application does).
    pub fn apply(&mut self, tx: &Transaction) -> usize {
        let mut touched = 0;
        for input in tx.inputs() {
            if input.owner.shard(self.num_shards) != self.shard {
                continue;
            }
            if let Some(spent) = self.store.remove(&input.outpoint) {
                self.total -= spent.amount;
                touched += 1;
            }
        }
        // Credit outputs owned by this shard straight from the memoized id —
        // no intermediate created-utxos vector on the apply hot path.
        let id = tx.id();
        for (index, output) in tx.outputs().iter().enumerate() {
            let outpoint = OutPoint {
                tx_id: id,
                index: index as u32,
            };
            if self.credit(outpoint, *output) {
                touched += 1;
            }
        }
        touched
    }

    /// Iterates over held outpoints (sorted, for deterministic snapshots).
    ///
    /// O(n log n) per call: **report-time only**. The per-round pipeline
    /// (`validate`, `apply`, block application) must never call this — a
    /// regression test checks the call counter stays at zero across heavy
    /// validate/apply traffic.
    pub fn sorted_outpoints(&self) -> Vec<OutPoint> {
        self.sorted_queries.fetch_add(1, Ordering::Relaxed);
        let mut keys: Vec<OutPoint> = Vec::with_capacity(self.store.len());
        self.store.for_each(&mut |outpoint, _| keys.push(*outpoint));
        keys.sort();
        keys
    }

    /// Number of times [`UtxoSet::sorted_outpoints`] has been called on this
    /// set (regression instrumentation for the report-time-only restriction).
    pub fn sorted_outpoint_queries(&self) -> u64 {
        self.sorted_queries.load(Ordering::Relaxed)
    }
}

/// The state-free parts of the authentication function `V`: non-empty
/// outputs, no duplicate inputs, conservation of value. Shared by the
/// per-shard [`UtxoSet::validate`] and the overlay validation used during
/// block assembly.
fn validate_structural(tx: &Transaction) -> Result<(), ValidationError> {
    if tx.outputs().is_empty() {
        return Err(ValidationError::Empty);
    }
    let inputs = tx.inputs();
    for (i, a) in inputs.iter().enumerate() {
        for b in &inputs[i + 1..] {
            if a.outpoint == b.outpoint {
                return Err(ValidationError::DoubleSpendWithinTx);
            }
        }
    }
    // Conservation of value over claimed amounts; the stateful existence
    // checks pin the claims to the actual UTXO sets.
    if !tx.is_genesis() && tx.output_sum() > tx.input_sum() {
        return Err(ValidationError::ValueCreated);
    }
    Ok(())
}

/// A copy-free view of "the UTXO state after applying these candidates" used
/// by the referee committee while it assembles a block.
///
/// The seed cloned **every shard's entire UTXO set** each round just to
/// re-validate candidates incrementally. The overlay records only the round's
/// deltas — outpoints spent and outputs created by already-accepted
/// candidates — and resolves lookups as `created − spent` over the untouched
/// base sets. `clear()` keeps the allocations for the next round, making the
/// referee's re-validation allocation-free at steady state.
#[derive(Debug, Default)]
pub struct UtxoOverlay {
    spent: FxHashSet<OutPoint>,
    created: FxHashMap<OutPoint, TxOutput>,
}

impl UtxoOverlay {
    /// Creates an empty overlay.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets all deltas but keeps the allocated capacity.
    pub fn clear(&mut self) {
        self.spent.clear();
        self.created.clear();
    }

    /// True when no deltas are recorded.
    pub fn is_empty(&self) -> bool {
        self.spent.is_empty() && self.created.is_empty()
    }

    /// Resolves `outpoint` as shard `shard` of `base` would see it after the
    /// recorded deltas.
    fn lookup<'a>(
        &'a self,
        base: &'a [UtxoSet],
        shard: usize,
        outpoint: &OutPoint,
    ) -> Option<&'a TxOutput> {
        if self.spent.contains(outpoint) {
            return None;
        }
        if let Some(created) = self.created.get(outpoint) {
            // Created outputs are routed to their owner's shard, mirroring
            // `UtxoSet::credit`'s refusal to hold foreign outputs.
            if created.owner.shard(base.len()) == shard {
                return Some(created);
            }
            return None;
        }
        base[shard].get(outpoint)
    }

    /// Validates `tx` against every involved shard as
    /// [`validate_across_shards`] does, but over `base + deltas` instead of a
    /// cloned working copy.
    pub fn validate_across(
        &self,
        tx: &Transaction,
        base: &[UtxoSet],
    ) -> Result<(), ValidationError> {
        let m = base.len();
        let input_shards = tx.input_shards(m);
        for &shard in &input_shards {
            self.validate_for_shard(tx, base, shard)?;
        }
        if !tx.is_genesis() && tx.inputs().is_empty() {
            return Err(ValidationError::Empty);
        }
        if input_shards.is_empty() && !base.is_empty() {
            // Covers genesis transactions: run the structural checks once,
            // exactly as `validate_across_shards` does via the first shard.
            self.validate_for_shard(tx, base, base[0].shard())?;
        }
        Ok(())
    }

    fn validate_for_shard(
        &self,
        tx: &Transaction,
        base: &[UtxoSet],
        shard: usize,
    ) -> Result<(), ValidationError> {
        validate_structural(tx)?;
        let m = base.len();
        for input in tx.inputs() {
            if input.owner.shard(m) != shard {
                continue;
            }
            match self.lookup(base, shard, &input.outpoint) {
                None => return Err(ValidationError::MissingInput),
                Some(existing) => {
                    if existing.owner != input.owner || existing.amount != input.amount {
                        return Err(ValidationError::InputMismatch);
                    }
                }
            }
        }
        Ok(())
    }

    /// Records an accepted transaction's deltas: all inputs become spent, all
    /// created outputs become visible to their owners' shards.
    pub fn apply(&mut self, tx: &Transaction) {
        for input in tx.inputs() {
            self.spent.insert(input.outpoint);
        }
        let id = tx.id();
        for (index, output) in tx.outputs().iter().enumerate() {
            self.created.insert(
                OutPoint {
                    tx_id: id,
                    index: index as u32,
                },
                *output,
            );
        }
    }
}

/// Validates a transaction against every involved shard's UTXO set, as the
/// referee committee conceptually does when it combines committee verdicts.
pub fn validate_across_shards(tx: &Transaction, shards: &[UtxoSet]) -> Result<(), ValidationError> {
    let input_shards = tx.input_shards(shards.len());
    for &shard_idx in &input_shards {
        shards[shard_idx].validate(tx)?;
    }
    // A transaction with no inputs in any shard (non-genesis) cannot be valid.
    if !tx.is_genesis() && tx.inputs().is_empty() {
        return Err(ValidationError::Empty);
    }
    // Still run the structural checks at least once even if it has no inputs in
    // range (covers genesis and fully-foreign transactions).
    if input_shards.is_empty() {
        if let Some(first) = shards.first() {
            first.validate(tx)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{AccountId, TxInput};

    /// Builds `m` shard UTXO sets seeded with one 100-value UTXO per account 0..n.
    fn setup(m: usize, accounts: u64) -> (Vec<UtxoSet>, Vec<(OutPoint, TxOutput)>) {
        let mut shards: Vec<UtxoSet> = (0..m).map(|s| UtxoSet::new(s, m)).collect();
        let genesis = Transaction::genesis(
            (0..accounts)
                .map(|a| TxOutput {
                    owner: AccountId(a),
                    amount: 100,
                })
                .collect(),
            0,
        );
        let created = genesis.created_utxos();
        for (outpoint, output) in &created {
            let shard = output.owner.shard(m);
            assert!(shards[shard].credit(*outpoint, *output));
        }
        (shards, created)
    }

    fn spend(from: (OutPoint, TxOutput), to: AccountId, amount: u64) -> Transaction {
        Transaction::new(
            vec![TxInput {
                outpoint: from.0,
                owner: from.1.owner,
                amount: from.1.amount,
            }],
            vec![
                TxOutput { owner: to, amount },
                TxOutput {
                    owner: from.1.owner,
                    amount: from.1.amount - amount - 1, // 1 unit fee
                },
            ],
            1,
        )
    }

    #[test]
    fn credit_routes_by_shard() {
        let (shards, created) = setup(4, 40);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 40);
        let value: u64 = shards.iter().map(|s| s.total_value()).sum();
        assert_eq!(value, 4000);
        // Outputs were routed to the owner's shard.
        for (outpoint, output) in &created {
            let s = output.owner.shard(4);
            assert_eq!(shards[s].get(outpoint), Some(output));
        }
        // Crediting to the wrong shard is refused.
        let mut wrong = UtxoSet::new((created[0].1.owner.shard(4) + 1) % 4, 4);
        assert!(!wrong.credit(created[0].0, created[0].1));
    }

    #[test]
    fn valid_spend_passes_and_applies() {
        let (mut shards, created) = setup(2, 10);
        let tx = spend(created[0], AccountId(5), 40);
        let owner_shard = created[0].1.owner.shard(2);
        assert_eq!(shards[owner_shard].validate(&tx), Ok(()));
        assert_eq!(validate_across_shards(&tx, &shards), Ok(()));
        let before: u64 = shards.iter().map(|s| s.total_value()).sum();
        for s in shards.iter_mut() {
            s.apply(&tx);
        }
        let after: u64 = shards.iter().map(|s| s.total_value()).sum();
        assert_eq!(before - after, tx.fee(), "only the fee leaves the UTXO set");
        // The spent outpoint is gone.
        assert!(shards[owner_shard].get(&created[0].0).is_none());
    }

    #[test]
    fn missing_input_rejected() {
        let (mut shards, created) = setup(2, 10);
        let tx = spend(created[0], AccountId(5), 40);
        for s in shards.iter_mut() {
            s.apply(&tx);
        }
        // Spending the same UTXO again fails.
        assert_eq!(
            validate_across_shards(&tx, &shards),
            Err(ValidationError::MissingInput)
        );
    }

    #[test]
    fn double_spend_within_tx_rejected() {
        let (shards, created) = setup(2, 10);
        let (outpoint, output) = created[0];
        let tx = Transaction::new(
            vec![
                TxInput {
                    outpoint,
                    owner: output.owner,
                    amount: output.amount,
                },
                TxInput {
                    outpoint,
                    owner: output.owner,
                    amount: output.amount,
                },
            ],
            vec![TxOutput {
                owner: AccountId(9),
                amount: 150,
            }],
            0,
        );
        assert_eq!(
            validate_across_shards(&tx, &shards),
            Err(ValidationError::DoubleSpendWithinTx)
        );
    }

    #[test]
    fn value_creation_rejected() {
        let (shards, created) = setup(2, 10);
        let (outpoint, output) = created[0];
        let tx = Transaction::new(
            vec![TxInput {
                outpoint,
                owner: output.owner,
                amount: output.amount,
            }],
            vec![TxOutput {
                owner: AccountId(3),
                amount: output.amount + 1,
            }],
            0,
        );
        assert_eq!(
            validate_across_shards(&tx, &shards),
            Err(ValidationError::ValueCreated)
        );
    }

    #[test]
    fn mismatched_claim_rejected() {
        let (shards, created) = setup(2, 10);
        let (outpoint, output) = created[0];
        let tx = Transaction::new(
            vec![TxInput {
                outpoint,
                owner: output.owner,
                amount: output.amount + 50, // inflated claim
            }],
            vec![TxOutput {
                owner: AccountId(3),
                amount: 120,
            }],
            0,
        );
        assert_eq!(
            validate_across_shards(&tx, &shards),
            Err(ValidationError::InputMismatch)
        );
    }

    #[test]
    fn empty_outputs_rejected() {
        let (shards, created) = setup(2, 10);
        let (outpoint, output) = created[0];
        let tx = Transaction::new(
            vec![TxInput {
                outpoint,
                owner: output.owner,
                amount: output.amount,
            }],
            vec![],
            0,
        );
        assert_eq!(shards[0].validate(&tx), Err(ValidationError::Empty));
    }

    #[test]
    fn cross_shard_spend_checks_owning_shard_only() {
        let m = 4;
        let (shards, created) = setup(m, 40);
        // Pick a UTXO and pay an account in a different shard.
        let (outpoint, output) = created[0];
        let other = (0..200u64)
            .map(AccountId)
            .find(|a| a.shard(m) != output.owner.shard(m))
            .unwrap();
        let tx = Transaction::new(
            vec![TxInput {
                outpoint,
                owner: output.owner,
                amount: output.amount,
            }],
            vec![TxOutput {
                owner: other,
                amount: 99,
            }],
            0,
        );
        assert!(!tx.is_intra_shard(m));
        assert_eq!(validate_across_shards(&tx, &shards), Ok(()));
        // The receiving shard alone cannot see the input, but it is not asked to.
        assert_eq!(tx.input_shards(m), vec![output.owner.shard(m)]);
    }

    #[test]
    fn sorted_outpoints_are_deterministic() {
        let (shards, _) = setup(2, 20);
        let a = shards[0].sorted_outpoints();
        let b = shards[0].sorted_outpoints();
        assert_eq!(a, b);
        assert_eq!(a.len(), shards[0].len());
    }

    #[test]
    fn apply_and_validate_never_call_sorted_outpoints() {
        // Regression: sorted_outpoints is O(n log n) and report-time only.
        // Heavy validate/apply traffic must leave its call counter untouched.
        let (mut shards, created) = setup(2, 40);
        for (i, from) in created.iter().enumerate().take(30) {
            let tx = spend(*from, AccountId((i as u64 + 1) % 40), 40);
            let _ = validate_across_shards(&tx, &shards);
            for s in shards.iter_mut() {
                s.validate(&tx).unwrap();
                s.apply(&tx);
            }
        }
        for s in &shards {
            assert_eq!(
                s.sorted_outpoint_queries(),
                0,
                "validate/apply must not sort the UTXO set"
            );
        }
        // An explicit report-time call is counted.
        let _ = shards[0].sorted_outpoints();
        assert_eq!(shards[0].sorted_outpoint_queries(), 1);
    }

    mod differential {
        use super::*;
        use crate::smt::SmtStore;
        use crate::store::{StateBackend, StateStore};
        use proptest::prelude::*;

        /// Applies one genesis-style credit to every set of both fleets.
        fn credit_both(fleets: [&mut Vec<UtxoSet>; 2], tx: &Transaction) {
            for sets in fleets {
                for set in sets.iter_mut() {
                    set.apply(tx);
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// The differential contract of the state layer: a random
            /// credit/spend/commit sequence drives a map-backed and an
            /// SMT-backed fleet; both must agree on every lookup, `len`,
            /// `total_value` and the sorted-outpoint listing, and the SMT
            /// roots must be independent of insertion order and batch
            /// partitioning.
            #[test]
            fn prop_backends_agree_under_random_churn(
                raw in proptest::collection::vec(0u64..1_000_000, 1..160),
            ) {
                let m = 2usize;
                let mut map_sets: Vec<UtxoSet> =
                    (0..m).map(|s| UtxoSet::new(s, m)).collect();
                let mut smt_sets: Vec<UtxoSet> = (0..m)
                    .map(|s| UtxoSet::with_backend(s, m, 0, StateBackend::Smt))
                    .collect();
                let mut live: Vec<(OutPoint, TxOutput)> = Vec::new();
                let mut nonce = 0u64;
                let mut round = 0u64;
                for v in raw {
                    match v % 4 {
                        0 | 1 => {
                            // Credit: a fresh genesis-style mint.
                            nonce += 1;
                            let tx = Transaction::genesis(
                                vec![TxOutput {
                                    owner: AccountId(v % 64),
                                    amount: 1 + v % 500,
                                }],
                                nonce,
                            );
                            live.extend(tx.created_utxos());
                            credit_both([&mut map_sets, &mut smt_sets], &tx);
                        }
                        2 => {
                            // Spend: consume one live UTXO, mint one output.
                            if live.is_empty() {
                                continue;
                            }
                            let idx = (v as usize / 4) % live.len();
                            let (outpoint, output) = live.swap_remove(idx);
                            let tx = Transaction::new(
                                vec![TxInput {
                                    outpoint,
                                    owner: output.owner,
                                    amount: output.amount,
                                }],
                                vec![TxOutput {
                                    owner: AccountId((v / 7) % 64),
                                    amount: output.amount,
                                }],
                                v,
                            );
                            live.extend(tx.created_utxos());
                            credit_both([&mut map_sets, &mut smt_sets], &tx);
                        }
                        _ => {
                            // Commit: seal the batch accumulated so far.
                            for (ms, ss) in map_sets.iter_mut().zip(smt_sets.iter_mut()) {
                                prop_assert_eq!(ms.commit_round(round), None);
                                prop_assert!(ss.commit_round(round).is_some());
                            }
                            round += 1;
                        }
                    }
                }
                for (ms, ss) in map_sets.iter_mut().zip(smt_sets.iter_mut()) {
                    prop_assert_eq!(ms.len(), ss.len());
                    prop_assert_eq!(ms.total_value(), ss.total_value());
                    let listing = ms.sorted_outpoints();
                    prop_assert_eq!(&listing, &ss.sorted_outpoints());
                    for outpoint in &listing {
                        prop_assert_eq!(ms.get(outpoint), ss.get(outpoint));
                    }
                    // Order independence: one fresh batch holding the same
                    // final entries — inserted forward and reverse — commits
                    // to the same root the incremental churn arrived at.
                    prop_assert!(ss.commit_round(round).is_some());
                    let entries: Vec<(OutPoint, TxOutput)> = listing
                        .iter()
                        .map(|op| (*op, *ss.get(op).unwrap()))
                        .collect();
                    let mut fwd = SmtStore::default();
                    let mut rev = SmtStore::default();
                    for (op, out) in &entries {
                        fwd.insert(*op, *out);
                    }
                    for (op, out) in entries.iter().rev() {
                        rev.insert(*op, *out);
                    }
                    let fwd_root = fwd.commit(0);
                    prop_assert_eq!(fwd_root, rev.commit(0));
                    prop_assert_eq!(fwd_root, ss.state_root());
                }
            }
        }
    }

    #[test]
    fn overlay_matches_cloned_working_sets() {
        // The overlay must make exactly the accept/reject decisions the old
        // clone-and-apply working copy made, over a mix of valid spends,
        // double submissions and chained spends.
        let (shards, created) = setup(3, 30);
        let mut candidates: Vec<Transaction> = Vec::new();
        for (i, from) in created.iter().enumerate().take(12) {
            let tx = spend(*from, AccountId((i as u64 + 7) % 30), 40);
            if i % 3 == 0 {
                // Duplicate submission: second copy must be rejected.
                candidates.push(tx.clone());
            }
            candidates.push(tx);
        }
        // A chained spend: consume an output created by an earlier candidate.
        let parent = &candidates[0];
        let parent_out = parent.created_utxos()[0];
        candidates.push(Transaction::new(
            vec![TxInput {
                outpoint: parent_out.0,
                owner: parent_out.1.owner,
                amount: parent_out.1.amount,
            }],
            vec![TxOutput {
                owner: AccountId(2),
                amount: parent_out.1.amount.saturating_sub(1),
            }],
            999,
        ));

        // Reference: clone the sets and apply incrementally (the seed's way).
        let mut working: Vec<UtxoSet> = shards.to_vec();
        let mut expected = Vec::new();
        for tx in &candidates {
            let ok = validate_across_shards(tx, &working).is_ok();
            if ok {
                for set in working.iter_mut() {
                    set.apply(tx);
                }
            }
            expected.push(ok);
        }

        // Overlay: same decisions, no cloned sets.
        let mut overlay = UtxoOverlay::new();
        for (tx, &want) in candidates.iter().zip(&expected) {
            let got = overlay.validate_across(tx, &shards).is_ok();
            assert_eq!(got, want, "overlay decision diverged for {:?}", tx.id());
            if got {
                overlay.apply(tx);
            }
        }
        assert!(!overlay.is_empty());
        overlay.clear();
        assert!(overlay.is_empty());
        assert!(expected.iter().any(|&b| b));
        assert!(expected.iter().any(|&b| !b));
    }
}
