//! The authenticated state backend: a compressed sparse Merkle tree over
//! SHA-256 with copy-on-write versioned roots.
//!
//! ## Shape
//!
//! Keys are 256-bit digests of outpoints; the tree is the *compressed*
//! binary SMT over them: a subtree holding exactly one entry is represented
//! by the leaf itself, an empty subtree by the all-zero digest. The shape is
//! therefore a pure function of the key set — two stores holding the same
//! entries have the same root no matter the insertion or batching order.
//! Hash conventions (leaf/internal preimages, path bits) live in
//! [`cycledger_crypto::smt`] so light clients can verify proofs without
//! this crate.
//!
//! ## Write path
//!
//! `insert`/`remove` update an [`FxHashMap`] mirror (so the per-input
//! lookup hot path of the authentication function `V` stays O(1) and makes
//! *identical* decisions to the flat-map backend) and buffer the delta.
//! [`SmtStore::commit`] seals one round's buffered deltas in a single
//! batch-sorted fold:
//!
//! 1. key, value and leaf digests of the whole batch are lane-batched
//!    through [`sha256_many`];
//! 2. a structural pass merges the key-sorted batch into the tree
//!    copy-on-write — path-copied internal nodes are allocated with
//!    placeholder hashes and recorded per depth, untouched subtrees are
//!    shared with previous versions;
//! 3. dirty internal nodes are hashed level by level, deepest first, again
//!    through [`sha256_many`] — children are always final before parents.
//!
//! Committing once per round instead of once per transaction is what keeps
//! the authenticated backend within a small factor of the flat map: a
//! round's writes to one path share the path copy and the O(log n) hashes.
//!
//! Old roots stay valid after a commit (nodes are never mutated, only
//! superseded), which is what `root_at_round` snapshots lean on.

use cycledger_crypto::fxhash::{FxBuildHasher, FxHashMap};
use cycledger_crypto::sha256::{sha256, sha256_many, Digest};
use cycledger_crypto::smt::{
    fill_internal_preimage, fill_leaf_preimage, key_bit, ProofTerminal, StateProof, EMPTY_ROOT,
};

use crate::store::StateStore;
use crate::transaction::{OutPoint, TxOutput};

/// Sentinel node reference: the empty subtree.
const EMPTY_REF: u32 = u32::MAX;
/// High bit tags a reference into the leaf arena instead of the internal one.
const LEAF_TAG: u32 = 0x8000_0000;

#[inline]
fn is_leaf(node: u32) -> bool {
    node != EMPTY_REF && node & LEAF_TAG != 0
}

/// Domain prefix of the outpoint-to-key digest.
const KEY_DOMAIN: &[u8; 17] = b"cycledger/smt-key";
/// Domain prefix of the output-to-value digest.
const VAL_DOMAIN: &[u8; 17] = b"cycledger/smt-val";

fn key_preimage(outpoint: &OutPoint) -> [u8; 53] {
    let mut buf = [0u8; 53];
    buf[..17].copy_from_slice(KEY_DOMAIN);
    buf[17..49].copy_from_slice(outpoint.tx_id.as_bytes());
    buf[49..53].copy_from_slice(&outpoint.index.to_be_bytes());
    buf
}

fn value_preimage(output: &TxOutput) -> [u8; 33] {
    let mut buf = [0u8; 33];
    buf[..17].copy_from_slice(VAL_DOMAIN);
    buf[17..25].copy_from_slice(&output.owner.0.to_be_bytes());
    buf[25..33].copy_from_slice(&output.amount.to_be_bytes());
    buf
}

/// The tree key of an outpoint: `H("cycledger/smt-key" || tx_id || index)`.
pub fn key_digest(outpoint: &OutPoint) -> Digest {
    sha256(&key_preimage(outpoint))
}

/// The leaf value hash of an output:
/// `H("cycledger/smt-val" || owner || amount)`.
pub fn value_digest(output: &TxOutput) -> Digest {
    sha256(&value_preimage(output))
}

/// A path-copied internal node. `hash` is filled in by the level-ordered
/// hashing pass after the structural fold.
#[derive(Clone, Debug)]
struct InternalNode {
    hash: Digest,
    left: u32,
    right: u32,
}

/// An immutable leaf binding one key to one value hash.
#[derive(Clone, Debug)]
struct LeafNode {
    key: Digest,
    value_hash: Digest,
    hash: Digest,
}

/// One batched delta: a key plus either the pre-hashed replacement leaf
/// (upsert) or [`EMPTY_REF`] (delete).
struct Item {
    key: Digest,
    leaf: u32,
}

/// New internal nodes of the current fold, grouped by depth so the hashing
/// pass can go level by level (children before parents).
#[derive(Default)]
struct Dirty {
    by_depth: Vec<Vec<u32>>,
}

impl Dirty {
    fn mark(&mut self, depth: usize, node: u32) {
        if self.by_depth.len() <= depth {
            self.by_depth.resize_with(depth + 1, Vec::new);
        }
        self.by_depth[depth].push(node);
    }
}

/// The sparse-Merkle state store. See the module docs for the design.
#[derive(Clone, Debug)]
pub struct SmtStore {
    /// O(1) lookup mirror of the *live* state (committed ⊕ pending).
    mirror: FxHashMap<OutPoint, TxOutput>,
    /// Deltas since the last commit: `Some` upserts, `None` deletes.
    pending: FxHashMap<OutPoint, Option<TxOutput>>,
    /// Internal-node arena; nodes are immutable once hashed.
    internals: Vec<InternalNode>,
    /// Leaf arena; leaves are immutable from creation.
    leaves: Vec<LeafNode>,
    /// Root of the latest committed version.
    root: u32,
    /// `(round, root)` per committed round, ascending.
    versions: Vec<(u64, u32)>,
}

impl Default for SmtStore {
    fn default() -> Self {
        SmtStore::with_capacity(0)
    }
}

impl SmtStore {
    /// An empty store whose lookup mirror is pre-sized for `capacity`
    /// entries.
    pub fn with_capacity(capacity: usize) -> SmtStore {
        SmtStore {
            mirror: FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            pending: FxHashMap::default(),
            internals: Vec::new(),
            leaves: Vec::new(),
            root: EMPTY_REF,
            versions: Vec::new(),
        }
    }

    /// Number of deltas buffered since the last commit.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total nodes allocated across all versions (capacity telemetry for the
    /// state benchmark).
    pub fn allocated_nodes(&self) -> (usize, usize) {
        (self.internals.len(), self.leaves.len())
    }

    /// Folds the buffered deltas into the tree without recording a round
    /// version — used once at genesis so round 0's root already includes the
    /// genesis UTXOs as its base.
    pub fn commit_genesis(&mut self) -> Digest {
        self.fold_pending();
        self.ref_hash(self.root)
    }

    fn ref_hash(&self, node: u32) -> Digest {
        if node == EMPTY_REF {
            EMPTY_ROOT
        } else if is_leaf(node) {
            self.leaves[(node & !LEAF_TAG) as usize].hash
        } else {
            self.internals[node as usize].hash
        }
    }

    /// Drains `pending` into a key-sorted item batch with all leaf hashes
    /// precomputed (three `sha256_many` passes: keys, values, leaves), then
    /// runs the structural fold and the level-ordered hash pass.
    fn fold_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = self.pending.len();
        let ops: Vec<(OutPoint, Option<TxOutput>)> = self.pending.drain().collect();
        // Draining keeps the bucket array — deliberately, so steady-state
        // rounds reuse it allocation-free — but one huge batch (genesis at
        // 10^6+ entries) must not leave every later round walking a
        // million-slot empty table just to collect its ~1k deltas.
        if self.pending.capacity() > 4 * batch.max(1024) {
            self.pending.shrink_to(batch.max(1024));
        }

        // Pass 1: keys.
        let key_bufs: Vec<[u8; 53]> = ops.iter().map(|(op, _)| key_preimage(op)).collect();
        let key_refs: Vec<&[u8]> = key_bufs.iter().map(|b| b.as_slice()).collect();
        let mut keys: Vec<Digest> = Vec::new();
        sha256_many(&key_refs, &mut keys);

        // Pass 2: value hashes of the upserts.
        let upserts: Vec<usize> = (0..ops.len()).filter(|&i| ops[i].1.is_some()).collect();
        let val_bufs: Vec<[u8; 33]> = upserts
            .iter()
            .map(|&i| value_preimage(ops[i].1.as_ref().unwrap()))
            .collect();
        let val_refs: Vec<&[u8]> = val_bufs.iter().map(|b| b.as_slice()).collect();
        let mut value_hashes: Vec<Digest> = Vec::new();
        sha256_many(&val_refs, &mut value_hashes);

        // Pass 3: leaf hashes of the upserts.
        let mut leaf_bufs: Vec<[u8; 65]> = vec![[0u8; 65]; upserts.len()];
        for ((buf, &i), value_hash) in leaf_bufs.iter_mut().zip(&upserts).zip(&value_hashes) {
            fill_leaf_preimage(buf, &keys[i], value_hash);
        }
        let leaf_refs: Vec<&[u8]> = leaf_bufs.iter().map(|b| b.as_slice()).collect();
        let mut leaf_hashes: Vec<Digest> = Vec::new();
        sha256_many(&leaf_refs, &mut leaf_hashes);

        // Allocate the new leaves and assemble the batch.
        let mut items: Vec<Item> = Vec::with_capacity(ops.len());
        let mut upsert_no = 0usize;
        for (i, (_, op)) in ops.iter().enumerate() {
            let leaf = if op.is_some() {
                let leaf_ref = LEAF_TAG | self.leaves.len() as u32;
                self.leaves.push(LeafNode {
                    key: keys[i],
                    value_hash: value_hashes[upsert_no],
                    hash: leaf_hashes[upsert_no],
                });
                upsert_no += 1;
                leaf_ref
            } else {
                EMPTY_REF
            };
            items.push(Item { key: keys[i], leaf });
        }
        // Key-sorted: lexicographic byte order equals path order, so every
        // sub-slice of the fold is contiguous.
        items.sort_unstable_by_key(|a| a.key);

        let mut dirty = Dirty::default();
        self.root = self.fold(self.root, 0, &items, &mut dirty);
        self.rehash_dirty(&dirty);
    }

    /// First index of `batch` whose key has bit `depth` set (the
    /// left/right split point of a key-sorted batch).
    fn split_point(batch: &[Item], depth: usize) -> usize {
        batch.partition_point(|item| !key_bit(&item.key, depth))
    }

    /// Merges a key-sorted batch into `node`, copy-on-write. New internal
    /// nodes carry placeholder hashes and are recorded in `dirty`.
    fn fold(&mut self, node: u32, depth: usize, batch: &[Item], dirty: &mut Dirty) -> u32 {
        if batch.is_empty() {
            return node;
        }
        if node == EMPTY_REF {
            return self.build(depth, batch, dirty);
        }
        if is_leaf(node) {
            return self.merge_leaf(node, depth, batch, dirty);
        }
        let (left, right) = {
            let n = &self.internals[node as usize];
            (n.left, n.right)
        };
        let split = Self::split_point(batch, depth);
        let new_left = self.fold(left, depth + 1, &batch[..split], dirty);
        let new_right = self.fold(right, depth + 1, &batch[split..], dirty);
        if new_left == left && new_right == right {
            // Pure no-op batch (deletes of absent keys): share the old node.
            return node;
        }
        self.join(depth, new_left, new_right, dirty)
    }

    /// Builds the canonical subtree of a key-sorted batch over an empty
    /// subtree (deletes are no-ops here).
    fn build(&mut self, depth: usize, batch: &[Item], dirty: &mut Dirty) -> u32 {
        debug_assert!(depth <= 256);
        let mut live = batch.iter().filter(|item| item.leaf != EMPTY_REF);
        let first = match live.next() {
            None => return EMPTY_REF,
            Some(item) => item,
        };
        if live.next().is_none() {
            return first.leaf;
        }
        let split = Self::split_point(batch, depth);
        let left = self.build(depth + 1, &batch[..split], dirty);
        let right = self.build(depth + 1, &batch[split..], dirty);
        self.join(depth, left, right, dirty)
    }

    /// Merges a batch into a subtree currently represented by a single
    /// leaf (the compressed form of a one-entry subtree).
    fn merge_leaf(&mut self, leaf: u32, depth: usize, batch: &[Item], dirty: &mut Dirty) -> u32 {
        if batch.is_empty() {
            return leaf;
        }
        let leaf_key = self.leaves[(leaf & !LEAF_TAG) as usize].key;
        if batch
            .binary_search_by(|item| item.key.cmp(&leaf_key))
            .is_ok()
        {
            // The batch addresses the leaf's own key: an upsert replaces it,
            // a delete removes it — either way the batch alone decides.
            return self.build(depth, batch, dirty);
        }
        if !batch.iter().any(|item| item.leaf != EMPTY_REF) {
            // Only deletes of other (absent) keys: nothing changes.
            return leaf;
        }
        let split = Self::split_point(batch, depth);
        let (left, right) = if key_bit(&leaf_key, depth) {
            (
                self.build(depth + 1, &batch[..split], dirty),
                self.merge_leaf(leaf, depth + 1, &batch[split..], dirty),
            )
        } else {
            (
                self.merge_leaf(leaf, depth + 1, &batch[..split], dirty),
                self.build(depth + 1, &batch[split..], dirty),
            )
        };
        self.join(depth, left, right, dirty)
    }

    /// Canonicalizing node constructor: collapses one-leaf subtrees so the
    /// tree shape stays a pure function of the key set.
    fn join(&mut self, depth: usize, left: u32, right: u32, dirty: &mut Dirty) -> u32 {
        match (left == EMPTY_REF, right == EMPTY_REF) {
            (true, true) => EMPTY_REF,
            (true, false) if is_leaf(right) => right,
            (false, true) if is_leaf(left) => left,
            _ => {
                let node = self.internals.len() as u32;
                assert!(node & LEAF_TAG == 0, "internal arena exhausted");
                self.internals.push(InternalNode {
                    hash: Digest::ZERO,
                    left,
                    right,
                });
                dirty.mark(depth, node);
                node
            }
        }
    }

    /// Hashes the fold's new internal nodes level by level, deepest first,
    /// lane-batched through [`sha256_many`]. Children are final before their
    /// parents: leaves were hashed before the fold, deeper internals in an
    /// earlier iteration, shared subtrees in an earlier commit.
    fn rehash_dirty(&mut self, dirty: &Dirty) {
        let mut bufs: Vec<[u8; 65]> = Vec::new();
        let mut hashes: Vec<Digest> = Vec::new();
        for level in dirty.by_depth.iter().rev() {
            if level.is_empty() {
                continue;
            }
            bufs.clear();
            bufs.resize(level.len(), [0u8; 65]);
            for (buf, &node) in bufs.iter_mut().zip(level) {
                let (left, right) = {
                    let n = &self.internals[node as usize];
                    (n.left, n.right)
                };
                let left_hash = self.ref_hash(left);
                let right_hash = self.ref_hash(right);
                fill_internal_preimage(buf, &left_hash, &right_hash);
            }
            let refs: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
            hashes.clear();
            sha256_many(&refs, &mut hashes);
            for (&node, hash) in level.iter().zip(&hashes) {
                self.internals[node as usize].hash = *hash;
            }
        }
    }
}

impl StateStore for SmtStore {
    fn get(&self, outpoint: &OutPoint) -> Option<&TxOutput> {
        self.mirror.get(outpoint)
    }

    fn insert(&mut self, outpoint: OutPoint, output: TxOutput) -> Option<TxOutput> {
        self.pending.insert(outpoint, Some(output));
        self.mirror.insert(outpoint, output)
    }

    fn remove(&mut self, outpoint: &OutPoint) -> Option<TxOutput> {
        let old = self.mirror.remove(outpoint);
        if old.is_some() {
            self.pending.insert(*outpoint, None);
        }
        old
    }

    fn len(&self) -> usize {
        self.mirror.len()
    }

    fn for_each(&self, f: &mut dyn FnMut(&OutPoint, &TxOutput)) {
        for (outpoint, output) in &self.mirror {
            f(outpoint, output);
        }
    }

    fn commit(&mut self, round: u64) -> Option<Digest> {
        self.fold_pending();
        debug_assert!(
            self.versions.last().is_none_or(|&(r, _)| r < round),
            "rounds must commit in ascending order"
        );
        self.versions.push((round, self.root));
        Some(self.ref_hash(self.root))
    }

    fn state_root(&self) -> Option<Digest> {
        Some(self.ref_hash(self.root))
    }

    fn root_at_round(&self, round: u64) -> Option<Digest> {
        let idx = self.versions.partition_point(|&(r, _)| r <= round);
        idx.checked_sub(1)
            .map(|i| self.ref_hash(self.versions[i].1))
    }

    fn prove(&self, outpoint: &OutPoint) -> Option<StateProof> {
        let key = key_digest(outpoint);
        let mut siblings = Vec::new();
        let mut node = self.root;
        let mut depth = 0usize;
        loop {
            if node == EMPTY_REF {
                return Some(StateProof {
                    siblings,
                    terminal: ProofTerminal::AbsentEmpty,
                });
            }
            if is_leaf(node) {
                let leaf = &self.leaves[(node & !LEAF_TAG) as usize];
                let terminal = if leaf.key == key {
                    ProofTerminal::Included {
                        value_hash: leaf.value_hash,
                    }
                } else {
                    ProofTerminal::AbsentLeaf {
                        leaf_key: leaf.key,
                        leaf_value_hash: leaf.value_hash,
                    }
                };
                return Some(StateProof { siblings, terminal });
            }
            let n = &self.internals[node as usize];
            if key_bit(&key, depth) {
                siblings.push(self.ref_hash(n.left));
                node = n.right;
            } else {
                siblings.push(self.ref_hash(n.right));
                node = n.left;
            }
            depth += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::AccountId;
    use cycledger_crypto::sha256::hash_parts;
    use cycledger_crypto::smt::{internal_hash, leaf_hash, verify_proof};

    fn op(n: u64) -> OutPoint {
        OutPoint {
            tx_id: hash_parts(&[b"smt-store-test", &n.to_be_bytes()]),
            index: (n % 3) as u32,
        }
    }

    fn out(n: u64) -> TxOutput {
        TxOutput {
            owner: AccountId(n),
            amount: 100 + n,
        }
    }

    /// Independent reference root: recursive canonical construction over the
    /// sorted `(key, value_hash)` list, using only the crypto-crate hash
    /// conventions (no tree code shared with the implementation under test).
    fn reference_root(entries: &[(Digest, Digest)], depth: usize) -> Digest {
        match entries.len() {
            0 => EMPTY_ROOT,
            1 => leaf_hash(&entries[0].0, &entries[0].1),
            _ => {
                let split = entries.partition_point(|(k, _)| !key_bit(k, depth));
                let left = reference_root(&entries[..split], depth + 1);
                let right = reference_root(&entries[split..], depth + 1);
                internal_hash(&left, &right)
            }
        }
    }

    fn reference_root_of(entries: &FxHashMap<OutPoint, TxOutput>) -> Digest {
        let mut pairs: Vec<(Digest, Digest)> = entries
            .iter()
            .map(|(op, o)| (key_digest(op), value_digest(o)))
            .collect();
        pairs.sort_unstable_by_key(|a| a.0);
        reference_root(&pairs, 0)
    }

    #[test]
    fn roots_match_the_reference_construction() {
        let mut store = SmtStore::default();
        let mut model: FxHashMap<OutPoint, TxOutput> = FxHashMap::default();
        // Three commits: inserts, a mixed batch with deletes, all-deletes.
        for n in 0..50 {
            store.insert(op(n), out(n));
            model.insert(op(n), out(n));
        }
        let root = store.commit(0).unwrap();
        assert_eq!(root, reference_root_of(&model));

        for n in 50..70 {
            store.insert(op(n), out(n));
            model.insert(op(n), out(n));
        }
        for n in (0..50).step_by(3) {
            store.remove(&op(n));
            model.remove(&op(n));
        }
        // Update in place: same key, new value.
        store.insert(op(51), out(999));
        model.insert(op(51), out(999));
        let root = store.commit(1).unwrap();
        assert_eq!(root, reference_root_of(&model));
        assert_eq!(store.len(), model.len());

        let keys: Vec<OutPoint> = model.keys().copied().collect();
        for k in keys {
            store.remove(&k);
        }
        let root = store.commit(2).unwrap();
        assert_eq!(root, EMPTY_ROOT, "deleting everything empties the tree");
    }

    #[test]
    fn root_is_insertion_order_independent() {
        let entries: Vec<(OutPoint, TxOutput)> = (0..64).map(|n| (op(n), out(n))).collect();

        // One batch, forward order.
        let mut a = SmtStore::default();
        for (o, v) in &entries {
            a.insert(*o, *v);
        }
        let root_a = a.commit(0).unwrap();

        // One batch, reverse order.
        let mut b = SmtStore::default();
        for (o, v) in entries.iter().rev() {
            b.insert(*o, *v);
        }
        let root_b = b.commit(0).unwrap();
        assert_eq!(root_a, root_b, "order within a batch must not matter");

        // Split across several commits, interleaved with churn that cancels.
        let mut c = SmtStore::default();
        for (o, v) in entries.iter().skip(32) {
            c.insert(*o, *v);
        }
        c.insert(op(1000), out(1000));
        c.commit(0);
        for (o, v) in entries.iter().take(32) {
            c.insert(*o, *v);
        }
        c.remove(&op(1000));
        let root_c = c.commit(1).unwrap();
        assert_eq!(root_a, root_c, "batch partitioning must not matter");
    }

    #[test]
    fn proofs_verify_against_the_root() {
        let mut store = SmtStore::default();
        for n in 0..40 {
            store.insert(op(n), out(n));
        }
        let root = store.commit(0).unwrap();

        // Inclusion for every present key.
        for n in 0..40 {
            let proof = store.prove(&op(n)).unwrap();
            assert!(
                matches!(proof.terminal, ProofTerminal::Included { .. }),
                "present key proved absent"
            );
            assert_eq!(verify_proof(&root, &key_digest(&op(n)), &proof), Ok(()));
        }
        // Exclusion for absent keys.
        for n in 1000..1040 {
            let proof = store.prove(&op(n)).unwrap();
            assert!(!matches!(proof.terminal, ProofTerminal::Included { .. }));
            assert_eq!(verify_proof(&root, &key_digest(&op(n)), &proof), Ok(()));
        }
        // A removed key flips from inclusion to exclusion.
        let victim = op(7);
        let old_proof = store.prove(&victim).unwrap();
        store.remove(&victim);
        let new_root = store.commit(1).unwrap();
        let new_proof = store.prove(&victim).unwrap();
        assert!(!matches!(
            new_proof.terminal,
            ProofTerminal::Included { .. }
        ));
        assert_eq!(
            verify_proof(&new_root, &key_digest(&victim), &new_proof),
            Ok(())
        );
        assert!(
            verify_proof(&new_root, &key_digest(&victim), &old_proof).is_err(),
            "stale inclusion must not verify against the new root"
        );
        // The old root still verifies the old proof (copy-on-write snapshot).
        assert_eq!(
            verify_proof(&root, &key_digest(&victim), &old_proof),
            Ok(())
        );
    }

    #[test]
    fn versioned_roots_snapshot_each_round() {
        let mut store = SmtStore::default();
        store.insert(op(1), out(1));
        let r0 = store.commit(0).unwrap();
        store.insert(op(2), out(2));
        let r2 = store.commit(2).unwrap();
        assert_ne!(r0, r2);
        assert_eq!(store.root_at_round(0), Some(r0));
        assert_eq!(
            store.root_at_round(1),
            Some(r0),
            "gap rounds see the last commit"
        );
        assert_eq!(store.root_at_round(2), Some(r2));
        assert_eq!(store.root_at_round(u64::MAX), Some(r2));
        assert_eq!(SmtStore::default().root_at_round(0), None);
        assert_eq!(store.state_root(), Some(r2));
    }

    #[test]
    fn genesis_commit_records_no_version() {
        let mut store = SmtStore::default();
        store.insert(op(1), out(1));
        let genesis_root = store.commit_genesis();
        assert_ne!(genesis_root, EMPTY_ROOT);
        assert_eq!(store.root_at_round(0), None, "genesis is not a round");
        assert_eq!(store.state_root(), Some(genesis_root));
        // An empty round commit re-publishes the same root.
        assert_eq!(store.commit(0), Some(genesis_root));
        assert_eq!(store.root_at_round(0), Some(genesis_root));
    }

    #[test]
    fn empty_commits_share_all_nodes() {
        let mut store = SmtStore::default();
        for n in 0..32 {
            store.insert(op(n), out(n));
        }
        store.commit(0);
        let nodes_before = store.allocated_nodes();
        for round in 1..5 {
            store.commit(round);
        }
        assert_eq!(
            store.allocated_nodes(),
            nodes_before,
            "no-delta commits must allocate nothing"
        );
    }

    #[test]
    fn uncommitted_writes_are_visible_to_lookups_only() {
        let mut store = SmtStore::default();
        store.insert(op(1), out(1));
        store.commit(0);
        store.insert(op(2), out(2));
        // The mirror sees the pending write...
        assert_eq!(store.get(&op(2)), Some(&out(2)));
        assert_eq!(store.len(), 2);
        assert_eq!(store.pending_len(), 1);
        // ...but the committed tree does not, until the next commit.
        let proof = store.prove(&op(2)).unwrap();
        assert!(!matches!(proof.terminal, ProofTerminal::Included { .. }));
        store.commit(1);
        let proof = store.prove(&op(2)).unwrap();
        assert!(matches!(proof.terminal, ProofTerminal::Included { .. }));
    }

    #[test]
    fn insert_then_remove_before_commit_is_a_no_op() {
        let mut store = SmtStore::default();
        store.insert(op(1), out(1));
        let base = store.commit(0).unwrap();
        store.insert(op(2), out(2));
        store.remove(&op(2));
        assert_eq!(
            store.commit(1),
            Some(base),
            "cancelled delta changes nothing"
        );
    }
}
