//! Blocks produced by the referee committee.
//!
//! At the end of round `r` the referee committee `C_R` packs (§IV-G):
//! the valid `TXdecSET`s of every committee, the next round's participants and
//! their reputations, the next referee committee, the next leaders and partial
//! sets, and the next round's randomness `R^{r+1}`. Releasing the block to the
//! whole network tells every node the configuration of round `r+1`.

use std::sync::OnceLock;

use cycledger_crypto::merkle::MerkleTree;
use cycledger_crypto::sha256::{hash_parts, Digest};

use crate::transaction::Transaction;

/// Committee configuration for the next round, as committed inside a block.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct NextRoundConfig {
    /// Node indices participating in round `r+1` (PoW solvers).
    pub participants: Vec<u32>,
    /// Updated reputation (fixed-point, 1e6 = 1.0) for each participant, in the
    /// same order as `participants`.
    pub reputations_fp: Vec<i64>,
    /// Members of the next referee committee.
    pub referee: Vec<u32>,
    /// Leader of each committee `k`.
    pub leaders: Vec<u32>,
    /// Partial set of each committee `k`.
    pub partial_sets: Vec<Vec<u32>>,
    /// Next round's randomness `R^{r+1}` from the beacon.
    pub randomness: Digest,
}

impl NextRoundConfig {
    fn encode(&self) -> Vec<u8> {
        // Exact encoded size, so the buffer never regrows mid-encode.
        let capacity = 4
            + 4 * self.participants.len()
            + 4
            + 8 * self.reputations_fp.len()
            + 4
            + 4 * self.referee.len()
            + 4
            + 4 * self.leaders.len()
            + 4
            + self
                .partial_sets
                .iter()
                .map(|ps| 4 + 4 * ps.len())
                .sum::<usize>()
            + 32;
        let mut out = Vec::with_capacity(capacity);
        let push_list = |out: &mut Vec<u8>, xs: &[u32]| {
            out.extend_from_slice(&(xs.len() as u32).to_be_bytes());
            for x in xs {
                out.extend_from_slice(&x.to_be_bytes());
            }
        };
        push_list(&mut out, &self.participants);
        out.extend_from_slice(&(self.reputations_fp.len() as u32).to_be_bytes());
        for r in &self.reputations_fp {
            out.extend_from_slice(&r.to_be_bytes());
        }
        push_list(&mut out, &self.referee);
        push_list(&mut out, &self.leaders);
        out.extend_from_slice(&(self.partial_sets.len() as u32).to_be_bytes());
        for ps in &self.partial_sets {
            push_list(&mut out, ps);
        }
        out.extend_from_slice(self.randomness.as_bytes());
        out
    }
}

/// A block header: everything needed to chain and verify the block body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockHeader {
    /// Round number `r`.
    pub round: u64,
    /// Hash of the previous block's header.
    pub prev_hash: Digest,
    /// Merkle root over the packed transactions.
    pub tx_root: Digest,
    /// Hash of the next-round configuration.
    pub config_hash: Digest,
}

impl BlockHeader {
    /// The header hash identifying this block.
    pub fn hash(&self) -> Digest {
        hash_parts(&[
            b"cycledger/block-header",
            &self.round.to_be_bytes(),
            self.prev_hash.as_bytes(),
            self.tx_root.as_bytes(),
            self.config_hash.as_bytes(),
        ])
    }
}

/// A full block: header plus the transactions and next-round configuration.
#[derive(Clone, Debug)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// Transactions admitted in this round (union of valid `TXdecSET`s).
    pub transactions: Vec<Transaction>,
    /// Configuration of round `r+1`.
    pub next_round: NextRoundConfig,
    /// Memoized header hash: the hash is consumed at least twice per round
    /// (referee agreement payload, chain append) and again by every
    /// tip-chaining caller, so it is computed once on first use. Sound as
    /// long as the header is not mutated after assembly — the constructor
    /// path (`assemble`) is the only producer of blocks in the protocol.
    header_hash: OnceLock<Digest>,
}

impl PartialEq for Block {
    fn eq(&self, other: &Self) -> bool {
        // The memo cache is excluded: equality is over block content.
        self.header == other.header
            && self.transactions == other.transactions
            && self.next_round == other.next_round
    }
}

impl Eq for Block {}

impl Block {
    /// Assembles a block for `round` on top of `prev_hash`.
    pub fn assemble(
        round: u64,
        prev_hash: Digest,
        transactions: Vec<Transaction>,
        next_round: NextRoundConfig,
    ) -> Block {
        let tx_root = Self::tx_root(&transactions);
        let config_hash = hash_parts(&[b"cycledger/next-round", &next_round.encode()]);
        Block {
            header: BlockHeader {
                round,
                prev_hash,
                tx_root,
                config_hash,
            },
            transactions,
            next_round,
            header_hash: OnceLock::new(),
        }
    }

    /// The header hash, computed once and memoized.
    pub fn header_hash(&self) -> Digest {
        *self.header_hash.get_or_init(|| self.header.hash())
    }

    /// Merkle root over a transaction list: each transaction's **memoized**
    /// canonical encoding is hashed straight into the tree's flat node
    /// vector — no re-encoding, no staged `Vec<Vec<u8>>` of leaves.
    pub fn tx_root(transactions: &[Transaction]) -> Digest {
        MerkleTree::build_from_slices(transactions.iter().map(|t| t.encoded_bytes())).root()
    }

    /// Verifies internal consistency: the header commits to exactly this body.
    pub fn verify_structure(&self) -> bool {
        self.header.tx_root == Self::tx_root(&self.transactions)
            && self.header.config_hash
                == hash_parts(&[b"cycledger/next-round", &self.next_round.encode()])
    }

    /// Total fee collected by the block (distributed by reputation, §IV-G).
    pub fn total_fees(&self) -> u64 {
        self.transactions.iter().map(|t| t.fee()).sum()
    }

    /// Approximate wire size of the block when propagated to the network.
    pub fn wire_size(&self) -> u64 {
        let tx_bytes: u64 = self.transactions.iter().map(|t| t.wire_size()).sum();
        tx_bytes + self.next_round.encode().len() as u64 + 4 * 32
    }

    /// Number of transactions packed.
    pub fn tx_count(&self) -> usize {
        self.transactions.len()
    }
}

/// A chain of blocks with structural verification on append.
#[derive(Clone, Debug, Default)]
pub struct Chain {
    blocks: Vec<Block>,
    /// Hash of the tip header, maintained on append. The seed recomputed the
    /// tip header hash on every `tip_hash()` call; it is now served from the
    /// appended block's memoized header digest.
    tip_hash: Digest,
}

impl Chain {
    /// Creates an empty chain.
    pub fn new() -> Chain {
        Chain {
            blocks: Vec::new(),
            tip_hash: Digest::ZERO,
        }
    }

    /// Hash of the latest block header, or [`Digest::ZERO`] for an empty chain.
    pub fn tip_hash(&self) -> Digest {
        self.tip_hash
    }

    /// Height (number of blocks).
    pub fn height(&self) -> usize {
        self.blocks.len()
    }

    /// Appends a block after checking it extends the tip and is well formed.
    pub fn append(&mut self, block: Block) -> Result<(), ChainError> {
        if block.header.prev_hash != self.tip_hash {
            return Err(ChainError::WrongParent);
        }
        if block.header.round != self.blocks.len() as u64 {
            return Err(ChainError::WrongRound);
        }
        if !block.verify_structure() {
            return Err(ChainError::BadStructure);
        }
        self.tip_hash = block.header_hash();
        self.blocks.push(block);
        Ok(())
    }

    /// Access to a block by round number.
    pub fn block(&self, round: u64) -> Option<&Block> {
        self.blocks.get(round as usize)
    }

    /// Total number of transactions across the chain.
    pub fn total_transactions(&self) -> usize {
        self.blocks.iter().map(|b| b.tx_count()).sum()
    }

    /// Header summaries for up to `max` blocks starting at `from_round`, in
    /// round order — what a peer serves to a catching-up node (the state-sync
    /// chunk; see [`Chain::verify_header_chain`] for the receiver side).
    pub fn header_summaries(&self, from_round: u64, max: usize) -> Vec<HeaderSummary> {
        self.blocks
            .iter()
            .skip(from_round as usize)
            .take(max)
            .map(|b| HeaderSummary {
                round: b.header.round,
                prev_hash: b.header.prev_hash,
                hash: b.header_hash(),
            })
            .collect()
    }

    /// Verifies a freshly fetched header chain: rounds must be contiguous
    /// from zero, each header must link to its predecessor (the first to
    /// [`Digest::ZERO`]), and the last hash must equal `expected_tip` — the
    /// tip the syncing node learned from the committee's quorum-certified
    /// chain. An empty slice verifies only against an empty chain
    /// (`expected_tip == Digest::ZERO`).
    pub fn verify_header_chain(
        headers: &[HeaderSummary],
        expected_tip: Digest,
    ) -> Result<(), ChainError> {
        let mut prev = Digest::ZERO;
        for (i, h) in headers.iter().enumerate() {
            if h.round != i as u64 {
                return Err(ChainError::WrongRound);
            }
            if h.prev_hash != prev {
                return Err(ChainError::WrongParent);
            }
            prev = h.hash;
        }
        if prev != expected_tip {
            return Err(ChainError::WrongParent);
        }
        Ok(())
    }
}

/// A block-header summary served to catching-up nodes: enough to verify the
/// hash linkage without shipping transaction bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeaderSummary {
    /// Block round (its height in the chain).
    pub round: u64,
    /// Hash of the previous block's header.
    pub prev_hash: Digest,
    /// Hash of this block's header.
    pub hash: Digest,
}

/// Errors returned when appending to a [`Chain`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainError {
    /// The block's `prev_hash` does not match the chain tip.
    WrongParent,
    /// The block's round number is not `height`.
    WrongRound,
    /// The header does not commit to the block body.
    BadStructure,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{AccountId, TxOutput};

    fn sample_block(round: u64, prev: Digest) -> Block {
        let txs = vec![
            Transaction::genesis(
                vec![TxOutput {
                    owner: AccountId(1),
                    amount: 50,
                }],
                round,
            ),
            Transaction::genesis(
                vec![TxOutput {
                    owner: AccountId(2),
                    amount: 70,
                }],
                round + 1000,
            ),
        ];
        let config = NextRoundConfig {
            participants: vec![0, 1, 2, 3],
            reputations_fp: vec![0, 1_000_000, -500_000, 250_000],
            referee: vec![0, 1],
            leaders: vec![2],
            partial_sets: vec![vec![3]],
            randomness: hash_parts(&[b"seed", &round.to_be_bytes()]),
        };
        Block::assemble(round, prev, txs, config)
    }

    #[test]
    fn header_commits_to_body() {
        let block = sample_block(0, Digest::ZERO);
        assert!(block.verify_structure());
        let mut tampered = block.clone();
        tampered.transactions.pop();
        assert!(!tampered.verify_structure());
        let mut tampered = block.clone();
        tampered.next_round.leaders[0] = 99;
        assert!(!tampered.verify_structure());
    }

    #[test]
    fn memoized_header_hash_matches_direct_hash_and_serves_the_tip() {
        let block = sample_block(0, Digest::ZERO);
        assert_eq!(block.header_hash(), block.header.hash());
        // Repeated calls return the memo.
        assert_eq!(block.header_hash(), block.header_hash());
        let mut chain = Chain::new();
        assert_eq!(chain.tip_hash(), Digest::ZERO);
        let expected = block.header.hash();
        chain.append(block).unwrap();
        assert_eq!(
            chain.tip_hash(),
            expected,
            "tip served from the memoized digest"
        );
    }

    #[test]
    fn header_hash_changes_with_round() {
        let a = sample_block(0, Digest::ZERO);
        let b = sample_block(1, Digest::ZERO);
        assert_ne!(a.header.hash(), b.header.hash());
    }

    #[test]
    fn chain_append_happy_path() {
        let mut chain = Chain::new();
        let b0 = sample_block(0, chain.tip_hash());
        chain.append(b0).unwrap();
        let b1 = sample_block(1, chain.tip_hash());
        chain.append(b1).unwrap();
        assert_eq!(chain.height(), 2);
        assert_eq!(chain.total_transactions(), 4);
        assert!(chain.block(0).is_some());
        assert!(chain.block(5).is_none());
    }

    #[test]
    fn chain_rejects_wrong_parent_round_and_structure() {
        let mut chain = Chain::new();
        let b0 = sample_block(0, chain.tip_hash());
        chain.append(b0).unwrap();

        let wrong_parent = sample_block(1, Digest::ZERO);
        assert_eq!(chain.append(wrong_parent), Err(ChainError::WrongParent));

        let wrong_round = sample_block(5, chain.tip_hash());
        assert_eq!(chain.append(wrong_round), Err(ChainError::WrongRound));

        let mut bad = sample_block(1, chain.tip_hash());
        bad.transactions.clear();
        assert_eq!(chain.append(bad), Err(ChainError::BadStructure));
        assert_eq!(chain.height(), 1);
    }

    #[test]
    fn fees_and_sizes() {
        let block = sample_block(0, Digest::ZERO);
        assert_eq!(block.total_fees(), 0, "genesis transactions carry no fee");
        assert!(block.wire_size() > 100);
        assert_eq!(block.tx_count(), 2);
    }

    #[test]
    fn header_summaries_chunk_and_verify_against_the_tip() {
        let mut chain = Chain::new();
        for round in 0..5 {
            let block = sample_block(round, chain.tip_hash());
            chain.append(block).unwrap();
        }
        // Chunked fetch: two summaries starting at round 2.
        let chunk = chain.header_summaries(2, 2);
        assert_eq!(chunk.len(), 2);
        assert_eq!(chunk[0].round, 2);
        assert_eq!(chunk[1].round, 3);
        assert_eq!(chunk[1].prev_hash, chunk[0].hash);
        // Past the tip: empty.
        assert!(chain.header_summaries(5, 8).is_empty());
        // The full fetch verifies against the quorum-certified tip.
        let all = chain.header_summaries(0, usize::MAX);
        assert_eq!(all.len(), 5);
        assert_eq!(Chain::verify_header_chain(&all, chain.tip_hash()), Ok(()));
    }

    #[test]
    fn verify_header_chain_rejects_gaps_bad_links_and_wrong_tip() {
        let mut chain = Chain::new();
        for round in 0..4 {
            let block = sample_block(round, chain.tip_hash());
            chain.append(block).unwrap();
        }
        let good = chain.header_summaries(0, usize::MAX);
        // A gap in the round sequence.
        let mut gap = good.clone();
        gap.remove(1);
        assert_eq!(
            Chain::verify_header_chain(&gap, chain.tip_hash()),
            Err(ChainError::WrongRound)
        );
        // A forged link.
        let mut forged = good.clone();
        forged[2].prev_hash = Digest::ZERO;
        assert_eq!(
            Chain::verify_header_chain(&forged, chain.tip_hash()),
            Err(ChainError::WrongParent)
        );
        // A truncated fetch that does not reach the certified tip.
        let truncated = &good[..3];
        assert_eq!(
            Chain::verify_header_chain(truncated, chain.tip_hash()),
            Err(ChainError::WrongParent)
        );
        // Empty chain verifies only against the zero tip.
        assert_eq!(Chain::verify_header_chain(&[], Digest::ZERO), Ok(()));
        assert_eq!(
            Chain::verify_header_chain(&[], chain.tip_hash()),
            Err(ChainError::WrongParent)
        );
    }

    #[test]
    fn empty_block_has_zero_tx_root() {
        let block = Block::assemble(0, Digest::ZERO, vec![], NextRoundConfig::default());
        assert_eq!(block.header.tx_root, Digest::ZERO);
        assert!(block.verify_structure());
    }
}
