//! The pluggable state-store layer behind [`crate::utxo::UtxoSet`].
//!
//! The paper's authentication function `V` only needs point lookups, so the
//! seed stored each shard's UTXOs in a flat [`FxHashMap`]. That answers
//! `get` in O(1) but can neither prove membership to a light client nor
//! publish a state commitment. This module splits the storage decision out
//! behind the [`StateStore`] trait with two backends:
//!
//! * [`MapStore`] — the flat map, still the default: zero behavioural change
//!   and byte-identical goldens for every pre-existing scenario;
//! * [`crate::smt::SmtStore`] — a compressed sparse Merkle tree with
//!   copy-on-write versioned roots, per-round batch commits and
//!   inclusion/exclusion proofs, at the cost of hashing each round's delta.
//!
//! Both backends sit behind the [`Store`] enum so the per-input lookup hot
//! path stays statically dispatched (one predictable branch, no vtable).

use cycledger_crypto::fxhash::{FxBuildHasher, FxHashMap};
use cycledger_crypto::sha256::Digest;
use cycledger_crypto::smt::StateProof;

use crate::smt::SmtStore;
use crate::transaction::{OutPoint, TxOutput};

/// Which state store a UTXO set (and hence a simulation) uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StateBackend {
    /// Flat hash map: O(1) everything, no authentication (the default).
    #[default]
    Map,
    /// Sparse Merkle tree: authenticated roots and proofs, per-round commits.
    Smt,
}

impl StateBackend {
    /// The spec/TOML name of this backend.
    pub fn name(self) -> &'static str {
        match self {
            StateBackend::Map => "map",
            StateBackend::Smt => "smt",
        }
    }

    /// Parses a spec/TOML name.
    pub fn from_name(name: &str) -> Option<StateBackend> {
        match name {
            "map" => Some(StateBackend::Map),
            "smt" => Some(StateBackend::Smt),
            _ => None,
        }
    }
}

/// The operations a UTXO state store must support.
///
/// `insert`/`remove` are the write path (block application); `commit` seals
/// one round's batch of writes into a versioned state root — a no-op
/// returning `None` for unauthenticated backends. Proof queries answer
/// against the *committed* tree, never the uncommitted batch.
pub trait StateStore {
    /// Point lookup (the `V` hot path).
    fn get(&self, outpoint: &OutPoint) -> Option<&TxOutput>;
    /// Inserts or replaces an entry, returning the previous value if any.
    fn insert(&mut self, outpoint: OutPoint, output: TxOutput) -> Option<TxOutput>;
    /// Removes an entry, returning it if it existed.
    fn remove(&mut self, outpoint: &OutPoint) -> Option<TxOutput>;
    /// Number of live entries.
    fn len(&self) -> usize;
    /// True when no entries are held.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Calls `f` on every live entry (iteration order unspecified).
    fn for_each(&self, f: &mut dyn FnMut(&OutPoint, &TxOutput));
    /// Seals the writes since the previous commit into a new versioned root
    /// recorded for `round`; returns the root, or `None` for backends
    /// without authentication.
    fn commit(&mut self, round: u64) -> Option<Digest>;
    /// The most recently committed state root, if the backend has one.
    fn state_root(&self) -> Option<Digest>;
    /// The root committed at the latest round `<= round`, if any.
    fn root_at_round(&self, round: u64) -> Option<Digest>;
    /// An inclusion/exclusion proof for `outpoint` against the latest
    /// committed root (`None` for backends without authentication).
    fn prove(&self, outpoint: &OutPoint) -> Option<StateProof>;
}

/// The flat-map backend: the seed's `FxHashMap`, unchanged semantics.
///
/// Outpoints are SHA-256 digests the protocol itself admitted (not
/// attacker-chosen map keys), so the SipHash DoS defence of the std hasher
/// buys nothing on this per-input-lookup hot path.
#[derive(Clone, Debug, Default)]
pub struct MapStore {
    entries: FxHashMap<OutPoint, TxOutput>,
}

impl MapStore {
    /// An empty store pre-sized for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> MapStore {
        MapStore {
            entries: FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
        }
    }
}

impl StateStore for MapStore {
    fn get(&self, outpoint: &OutPoint) -> Option<&TxOutput> {
        self.entries.get(outpoint)
    }

    fn insert(&mut self, outpoint: OutPoint, output: TxOutput) -> Option<TxOutput> {
        self.entries.insert(outpoint, output)
    }

    fn remove(&mut self, outpoint: &OutPoint) -> Option<TxOutput> {
        self.entries.remove(outpoint)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn for_each(&self, f: &mut dyn FnMut(&OutPoint, &TxOutput)) {
        for (outpoint, output) in &self.entries {
            f(outpoint, output);
        }
    }

    fn commit(&mut self, _round: u64) -> Option<Digest> {
        None
    }

    fn state_root(&self) -> Option<Digest> {
        None
    }

    fn root_at_round(&self, _round: u64) -> Option<Digest> {
        None
    }

    fn prove(&self, _outpoint: &OutPoint) -> Option<StateProof> {
        None
    }
}

/// Static-dispatch holder of the chosen backend; forwards the
/// [`StateStore`] surface with a single match instead of a vtable call.
#[derive(Clone, Debug)]
pub enum Store {
    /// Flat-map backend.
    Map(MapStore),
    /// Sparse-Merkle backend.
    Smt(SmtStore),
}

impl Store {
    /// Builds an empty store of the given backend, pre-sized where the
    /// backend supports it.
    pub fn with_capacity(backend: StateBackend, capacity: usize) -> Store {
        match backend {
            StateBackend::Map => Store::Map(MapStore::with_capacity(capacity)),
            StateBackend::Smt => Store::Smt(SmtStore::with_capacity(capacity)),
        }
    }

    /// Which backend this store is.
    pub fn backend(&self) -> StateBackend {
        match self {
            Store::Map(_) => StateBackend::Map,
            Store::Smt(_) => StateBackend::Smt,
        }
    }

    fn as_store(&self) -> &dyn StateStore {
        match self {
            Store::Map(s) => s,
            Store::Smt(s) => s,
        }
    }

    fn as_store_mut(&mut self) -> &mut dyn StateStore {
        match self {
            Store::Map(s) => s,
            Store::Smt(s) => s,
        }
    }

    /// Point lookup (statically dispatched on the hot path).
    #[inline]
    pub fn get(&self, outpoint: &OutPoint) -> Option<&TxOutput> {
        match self {
            Store::Map(s) => s.get(outpoint),
            Store::Smt(s) => s.get(outpoint),
        }
    }

    /// Inserts or replaces an entry, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, outpoint: OutPoint, output: TxOutput) -> Option<TxOutput> {
        match self {
            Store::Map(s) => s.insert(outpoint, output),
            Store::Smt(s) => s.insert(outpoint, output),
        }
    }

    /// Removes an entry, returning it if it existed.
    #[inline]
    pub fn remove(&mut self, outpoint: &OutPoint) -> Option<TxOutput> {
        match self {
            Store::Map(s) => s.remove(outpoint),
            Store::Smt(s) => s.remove(outpoint),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.as_store().len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.as_store().is_empty()
    }

    /// Calls `f` on every live entry (iteration order unspecified).
    pub fn for_each(&self, f: &mut dyn FnMut(&OutPoint, &TxOutput)) {
        self.as_store().for_each(f)
    }

    /// Seals the writes since the previous commit for `round`.
    pub fn commit(&mut self, round: u64) -> Option<Digest> {
        self.as_store_mut().commit(round)
    }

    /// The most recently committed state root, if any.
    pub fn state_root(&self) -> Option<Digest> {
        self.as_store().state_root()
    }

    /// The root committed at the latest round `<= round`, if any.
    pub fn root_at_round(&self, round: u64) -> Option<Digest> {
        self.as_store().root_at_round(round)
    }

    /// A proof for `outpoint` against the latest committed root, if the
    /// backend is authenticated.
    pub fn prove(&self, outpoint: &OutPoint) -> Option<StateProof> {
        self.as_store().prove(outpoint)
    }
}

impl Default for Store {
    fn default() -> Store {
        Store::Map(MapStore::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::AccountId;
    use cycledger_crypto::sha256::hash_parts;

    fn op(n: u64) -> OutPoint {
        OutPoint {
            tx_id: hash_parts(&[b"store-test", &n.to_be_bytes()]),
            index: 0,
        }
    }

    fn out(owner: u64, amount: u64) -> TxOutput {
        TxOutput {
            owner: AccountId(owner),
            amount,
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in [StateBackend::Map, StateBackend::Smt] {
            assert_eq!(StateBackend::from_name(backend.name()), Some(backend));
        }
        assert_eq!(StateBackend::from_name("jellyfish"), None);
        assert_eq!(StateBackend::default(), StateBackend::Map);
    }

    #[test]
    fn map_store_has_no_authentication_surface() {
        let mut store = Store::with_capacity(StateBackend::Map, 4);
        assert_eq!(store.backend(), StateBackend::Map);
        assert!(store.insert(op(1), out(1, 10)).is_none());
        assert_eq!(store.insert(op(1), out(1, 20)), Some(out(1, 10)));
        assert_eq!(store.len(), 1);
        assert_eq!(store.commit(0), None);
        assert_eq!(store.state_root(), None);
        assert_eq!(store.root_at_round(0), None);
        assert!(store.prove(&op(1)).is_none());
        assert_eq!(store.remove(&op(1)), Some(out(1, 20)));
        assert!(store.is_empty());
    }

    #[test]
    fn for_each_visits_every_entry() {
        let mut store = Store::with_capacity(StateBackend::Map, 4);
        for n in 0..8 {
            store.insert(op(n), out(n, n + 1));
        }
        let mut total = 0u64;
        store.for_each(&mut |_, o| total += o.amount);
        assert_eq!(total, (1..=8).sum::<u64>());
    }
}
