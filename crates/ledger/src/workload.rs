//! Deterministic transaction workload generation.
//!
//! The paper assumes "a large set of transactions are continuously sent to our
//! network by external users" (§III-D) with users spread uniformly over the `m`
//! shards. This module plays the role of those external users: it mints a genesis
//! UTXO per account, then produces batches of payments with a configurable
//! cross-shard ratio and a configurable fraction of deliberately invalid
//! transactions (which the committees must vote *No* on). Everything is derived
//! from a seed so protocol runs and benchmarks are reproducible.

use cycledger_crypto::hmac::HmacDrbg;

use crate::store::StateBackend;
use crate::transaction::{AccountId, OutPoint, Transaction, TxId, TxInput, TxOutput};
use crate::utxo::UtxoSet;

/// Workload configuration.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Number of shards `m`.
    pub num_shards: usize,
    /// Accounts minted per shard at genesis.
    pub accounts_per_shard: usize,
    /// Value of each genesis UTXO.
    pub genesis_amount: u64,
    /// Fraction of generated transactions that pay into a *different* shard
    /// (cross-shard transactions requiring inter-committee consensus).
    pub cross_shard_ratio: f64,
    /// Fraction of generated transactions that are deliberately invalid.
    pub invalid_ratio: f64,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_shards: 4,
            accounts_per_shard: 64,
            genesis_amount: 1_000,
            cross_shard_ratio: 0.2,
            invalid_ratio: 0.05,
            seed: 1,
        }
    }
}

/// Classification of a generated transaction, returned alongside it so tests
/// and benches can check protocol decisions against ground truth.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxKind {
    /// Valid, all inputs and outputs in one shard.
    IntraShard,
    /// Valid, touches more than one shard.
    CrossShard,
    /// Invalid: spends an outpoint that does not exist.
    InvalidMissingInput,
    /// Invalid: outputs exceed inputs.
    InvalidValueCreated,
}

impl TxKind {
    /// True for the two valid kinds.
    pub fn is_valid(self) -> bool {
        matches!(self, TxKind::IntraShard | TxKind::CrossShard)
    }
}

/// A generated transaction with its ground-truth classification.
#[derive(Clone, Debug)]
pub struct GeneratedTx {
    /// The transaction.
    pub tx: Transaction,
    /// What the generator intended it to be.
    pub kind: TxKind,
}

/// One generated-but-unconfirmed transaction in the generator's view: the
/// pool entry it consumed and the outputs it would create if it confirms.
struct PendingTx {
    id: TxId,
    input: (OutPoint, TxOutput),
    outputs: Vec<(OutPoint, TxOutput)>,
}

/// The workload generator.
///
/// Outputs created by generated transactions are *not* immediately spendable:
/// they sit in a pending pool until [`Workload::confirm_pending`] (or its
/// packed-aware sibling [`Workload::confirm_packed`]) is called — the
/// simulation does so once the round's block has been applied. This mirrors
/// real external users — they only spend confirmed UTXOs — and keeps every
/// transaction within one batch independently valid against the
/// beginning-of-round UTXO state.
pub struct Workload {
    config: WorkloadConfig,
    /// Spendable (confirmed) UTXOs per shard, from the generator's view.
    pools: Vec<Vec<(OutPoint, TxOutput)>>,
    /// Generated-but-not-yet-confirmed transactions: the input each consumed
    /// from the pool and the outputs it would create.
    pending: Vec<PendingTx>,
    /// Accounts grouped by shard.
    accounts_by_shard: Vec<Vec<AccountId>>,
    drbg: HmacDrbg,
    nonce: u64,
    genesis: Vec<Transaction>,
}

impl Workload {
    /// Builds a workload: mints genesis UTXOs and groups accounts by shard.
    pub fn new(config: WorkloadConfig) -> Workload {
        assert!(config.num_shards > 0);
        assert!(
            config.accounts_per_shard > 1,
            "need at least two accounts per shard"
        );
        assert!((0.0..=1.0).contains(&config.cross_shard_ratio));
        assert!((0.0..=1.0).contains(&config.invalid_ratio));
        let m = config.num_shards;
        let mut accounts_by_shard: Vec<Vec<AccountId>> = vec![Vec::new(); m];
        // Walk account ids until every shard has its quota; the hash-based shard
        // assignment means ids are spread roughly uniformly.
        let mut next_id = 0u64;
        while accounts_by_shard
            .iter()
            .any(|s| s.len() < config.accounts_per_shard)
        {
            let account = AccountId(next_id);
            next_id += 1;
            let shard = account.shard(m);
            if accounts_by_shard[shard].len() < config.accounts_per_shard {
                accounts_by_shard[shard].push(account);
            }
        }
        let mut pools: Vec<Vec<(OutPoint, TxOutput)>> = vec![Vec::new(); m];
        let mut genesis = Vec::new();
        for shard_accounts in &accounts_by_shard {
            let outputs: Vec<TxOutput> = shard_accounts
                .iter()
                .map(|&owner| TxOutput {
                    owner,
                    amount: config.genesis_amount,
                })
                .collect();
            let tx = Transaction::genesis(outputs, genesis.len() as u64);
            for (outpoint, output) in tx.created_utxos() {
                pools[output.owner.shard(m)].push((outpoint, output));
            }
            genesis.push(tx);
        }
        Workload {
            drbg: HmacDrbg::from_parts("cycledger/workload", &[&config.seed.to_be_bytes()]),
            config,
            pools,
            pending: Vec::new(),
            accounts_by_shard,
            nonce: 0,
            genesis,
        }
    }

    /// Makes the outputs of previously generated transactions spendable again.
    ///
    /// Call this after the round's block has been applied (the simulation does
    /// so automatically); until then, generated transactions never spend each
    /// other's outputs, so every batch is independently valid against the
    /// beginning-of-round UTXO state.
    ///
    /// This is the *optimistic* form: every pending transaction is assumed to
    /// have landed in the block. The fully synchronous simulation packs every
    /// valid offered transaction, so the assumption holds there; runs where
    /// network faults can genuinely lose transactions use
    /// [`Workload::confirm_packed`] instead.
    pub fn confirm_pending(&mut self) {
        let m = self.config.num_shards;
        for tx in self.pending.drain(..) {
            for (outpoint, output) in tx.outputs {
                self.pools[output.owner.shard(m)].push((outpoint, output));
            }
        }
    }

    /// Confirms exactly the pending transactions for which `packed` returns
    /// true: their outputs become spendable. The rest *expired unconfirmed* —
    /// their consumed inputs return to the pool (on chain those coins were
    /// never spent, so the user simply respends them later), and their
    /// outputs never existed. Keeps the generator's UTXO view consistent
    /// with the chain when partitions or timeouts keep transactions out of
    /// blocks.
    pub fn confirm_packed(&mut self, packed: impl Fn(&crate::transaction::TxId) -> bool) {
        let m = self.config.num_shards;
        for tx in self.pending.drain(..) {
            if packed(&tx.id) {
                for (outpoint, output) in tx.outputs {
                    self.pools[output.owner.shard(m)].push((outpoint, output));
                }
            } else {
                let (outpoint, output) = tx.input;
                self.pools[output.owner.shard(m)].push((outpoint, output));
            }
        }
    }

    /// Number of outputs currently awaiting confirmation.
    pub fn pending_outputs(&self) -> usize {
        self.pending.iter().map(|tx| tx.outputs.len()).sum()
    }

    /// The configuration in use.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The genesis transactions (apply these to shard UTXO sets before the run).
    pub fn genesis_transactions(&self) -> &[Transaction] {
        &self.genesis
    }

    /// Builds fresh per-shard UTXO sets seeded with the genesis outputs.
    pub fn build_genesis_utxo_sets(&self) -> Vec<UtxoSet> {
        self.build_genesis_utxo_sets_with(StateBackend::Map)
    }

    /// Builds fresh per-shard UTXO sets on the chosen state backend, seeded
    /// with the genesis outputs. On the authenticated backend the genesis
    /// credits are folded into the tree immediately (as a base version, not
    /// a round commit), so round 0's root builds on genesis state.
    pub fn build_genesis_utxo_sets_with(&self, backend: StateBackend) -> Vec<UtxoSet> {
        let m = self.config.num_shards;
        // Pre-size for the steady-state working set: the genesis UTXOs plus
        // the change/payment churn of a few rounds in flight.
        let capacity = self.config.accounts_per_shard * 4;
        let mut sets: Vec<UtxoSet> = (0..m)
            .map(|s| UtxoSet::with_backend(s, m, capacity, backend))
            .collect();
        for tx in &self.genesis {
            for set in sets.iter_mut() {
                set.apply(tx);
            }
        }
        for set in sets.iter_mut() {
            set.commit_genesis();
        }
        sets
    }

    fn next_nonce(&mut self) -> u64 {
        self.nonce += 1;
        self.nonce
    }

    fn pick_account(&mut self, shard: usize) -> AccountId {
        let accounts = &self.accounts_by_shard[shard];
        accounts[self.drbg.next_below(accounts.len() as u64) as usize]
    }

    fn pick_nonempty_shard(&mut self) -> Option<usize> {
        let nonempty: Vec<usize> = (0..self.config.num_shards)
            .filter(|&s| !self.pools[s].is_empty())
            .collect();
        if nonempty.is_empty() {
            return None;
        }
        Some(nonempty[self.drbg.next_below(nonempty.len() as u64) as usize])
    }

    /// Generates one transaction, updating the generator's internal UTXO view so
    /// that later valid transactions never double-spend earlier ones.
    pub fn generate(&mut self) -> Option<GeneratedTx> {
        let roll_invalid =
            (self.drbg.next_below(1_000_000) as f64) / 1_000_000.0 < self.config.invalid_ratio;
        let roll_cross =
            (self.drbg.next_below(1_000_000) as f64) / 1_000_000.0 < self.config.cross_shard_ratio;
        let m = self.config.num_shards;

        let src_shard = self.pick_nonempty_shard()?;
        let pool_len = self.pools[src_shard].len() as u64;
        let pick = self.drbg.next_below(pool_len) as usize;
        let nonce = self.next_nonce();

        if roll_invalid {
            // Alternate between the two invalid flavours.
            let (outpoint, output) = self.pools[src_shard][pick];
            if nonce.is_multiple_of(2) {
                // Missing input: reference an outpoint that was never created.
                let ghost = OutPoint {
                    tx_id: cycledger_crypto::sha256::hash_parts(&[b"ghost", &nonce.to_be_bytes()]),
                    index: 0,
                };
                let to = self.pick_account(src_shard);
                let tx = Transaction::new(
                    vec![TxInput {
                        outpoint: ghost,
                        owner: output.owner,
                        amount: output.amount,
                    }],
                    vec![TxOutput {
                        owner: to,
                        amount: output.amount - 1,
                    }],
                    nonce,
                );
                return Some(GeneratedTx {
                    tx,
                    kind: TxKind::InvalidMissingInput,
                });
            }
            // Value creation: outputs exceed the (real) input.
            let to = self.pick_account(src_shard);
            let tx = Transaction::new(
                vec![TxInput {
                    outpoint,
                    owner: output.owner,
                    amount: output.amount,
                }],
                vec![TxOutput {
                    owner: to,
                    amount: output.amount + 10,
                }],
                nonce,
            );
            return Some(GeneratedTx {
                tx,
                kind: TxKind::InvalidValueCreated,
            });
        }

        // Valid payment: consume the chosen UTXO (so it cannot be reused) and pay
        // most of it to the destination, returning change to the sender minus fee.
        let (outpoint, output) = self.pools[src_shard].swap_remove(pick);
        let dst_shard = if roll_cross && m > 1 {
            let mut s = self.drbg.next_below(m as u64) as usize;
            if s == src_shard {
                s = (s + 1) % m;
            }
            s
        } else {
            src_shard
        };
        let to = self.pick_account(dst_shard);
        let fee = 1.min(output.amount.saturating_sub(1));
        let pay = (output.amount - fee) / 2 + 1;
        let change = output.amount - fee - pay;
        let mut outputs = vec![TxOutput {
            owner: to,
            amount: pay,
        }];
        if change > 0 {
            outputs.push(TxOutput {
                owner: output.owner,
                amount: change,
            });
        }
        let tx = Transaction::new(
            vec![TxInput {
                outpoint,
                owner: output.owner,
                amount: output.amount,
            }],
            outputs,
            nonce,
        );
        // New outputs become spendable only after confirm_pending() /
        // confirm_packed() (i.e. after the block that contains this
        // transaction has been applied).
        self.pending.push(PendingTx {
            id: tx.id(),
            input: (
                outpoint,
                TxOutput {
                    owner: output.owner,
                    amount: output.amount,
                },
            ),
            outputs: tx.created_utxos(),
        });
        let kind = if dst_shard == src_shard && tx.is_intra_shard(m) {
            TxKind::IntraShard
        } else {
            TxKind::CrossShard
        };
        Some(GeneratedTx { tx, kind })
    }

    /// Generates a batch of `count` transactions (possibly fewer if the UTXO
    /// pools run dry, which only happens with pathological configurations).
    pub fn generate_batch(&mut self, count: usize) -> Vec<GeneratedTx> {
        (0..count).filter_map(|_| self.generate()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utxo::validate_across_shards;

    fn config(cross: f64, invalid: f64) -> WorkloadConfig {
        WorkloadConfig {
            num_shards: 4,
            accounts_per_shard: 16,
            genesis_amount: 1_000,
            cross_shard_ratio: cross,
            invalid_ratio: invalid,
            seed: 7,
        }
    }

    #[test]
    fn genesis_covers_every_shard() {
        let wl = Workload::new(config(0.2, 0.0));
        let sets = wl.build_genesis_utxo_sets();
        assert_eq!(sets.len(), 4);
        for set in &sets {
            assert_eq!(set.len(), 16);
            assert_eq!(set.total_value(), 16_000);
        }
        assert_eq!(wl.genesis_transactions().len(), 4);
    }

    #[test]
    fn valid_transactions_actually_validate() {
        let mut wl = Workload::new(config(0.3, 0.0));
        let mut sets = wl.build_genesis_utxo_sets();
        for _ in 0..3 {
            let batch = wl.generate_batch(50);
            assert_eq!(batch.len(), 50);
            for gen in &batch {
                assert!(gen.kind.is_valid());
                // Every transaction in a batch is valid against the
                // beginning-of-round state (no intra-batch chaining).
                assert_eq!(
                    validate_across_shards(&gen.tx, &sets),
                    Ok(()),
                    "generated valid tx must pass V"
                );
            }
            for gen in &batch {
                for set in sets.iter_mut() {
                    set.apply(&gen.tx);
                }
            }
            wl.confirm_pending();
        }
        assert_eq!(wl.pending_outputs(), 0);
    }

    #[test]
    fn packed_aware_confirmation_keeps_the_generator_consistent_with_the_chain() {
        // Half the batch "lands in the block", half expires unconfirmed
        // (e.g. a partition kept its committee from certifying). Later
        // batches must still be fully valid against the chain state: packed
        // outputs are spendable, expired transactions' inputs are respent.
        let mut wl = Workload::new(config(0.2, 0.0));
        let mut sets = wl.build_genesis_utxo_sets();
        let batch = wl.generate_batch(40);
        let packed: std::collections::HashSet<TxId> = batch
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(_, gen)| gen.tx.id())
            .collect();
        for gen in &batch {
            if packed.contains(&gen.tx.id()) {
                for set in sets.iter_mut() {
                    set.apply(&gen.tx);
                }
            }
        }
        wl.confirm_packed(|id| packed.contains(id));
        assert_eq!(wl.pending_outputs(), 0);
        let next = wl.generate_batch(40);
        assert_eq!(next.len(), 40, "expired inputs return to the pool");
        for gen in &next {
            assert_eq!(
                validate_across_shards(&gen.tx, &sets),
                Ok(()),
                "post-expiry batch must validate against the real chain state"
            );
        }
    }

    #[test]
    fn invalid_transactions_fail_validation() {
        let mut wl = Workload::new(config(0.2, 1.0));
        let sets = wl.build_genesis_utxo_sets();
        let batch = wl.generate_batch(50);
        for gen in &batch {
            assert!(!gen.kind.is_valid());
            assert!(
                validate_across_shards(&gen.tx, &sets).is_err(),
                "generated invalid tx must fail V: {:?}",
                gen.kind
            );
        }
    }

    #[test]
    fn cross_shard_ratio_is_respected_approximately() {
        let mut wl = Workload::new(config(0.5, 0.0));
        let mut all = Vec::new();
        for _ in 0..10 {
            all.extend(wl.generate_batch(50));
            wl.confirm_pending();
        }
        let cross = all.iter().filter(|g| g.kind == TxKind::CrossShard).count();
        let ratio = cross as f64 / all.len() as f64;
        assert!(
            (0.35..=0.65).contains(&ratio),
            "cross-shard ratio {ratio} too far from 0.5"
        );
    }

    #[test]
    fn zero_cross_ratio_generates_only_intra() {
        let mut wl = Workload::new(config(0.0, 0.0));
        let mut all = Vec::new();
        for _ in 0..4 {
            all.extend(wl.generate_batch(50));
            wl.confirm_pending();
        }
        assert!(all.iter().all(|g| g.kind == TxKind::IntraShard));
        // And all of them really touch a single shard.
        assert!(all.iter().all(|g| g.tx.is_intra_shard(4)));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let ids = |seed| {
            let mut cfg = config(0.4, 0.1);
            cfg.seed = seed;
            let mut wl = Workload::new(cfg);
            wl.generate_batch(50)
                .iter()
                .map(|g| g.tx.id())
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(1), ids(1));
        assert_ne!(ids(1), ids(2));
    }

    #[test]
    fn conservation_of_value_over_many_batches() {
        let mut wl = Workload::new(config(0.3, 0.0));
        let mut sets = wl.build_genesis_utxo_sets();
        let initial: u64 = sets.iter().map(|s| s.total_value()).sum();
        let mut fees = 0;
        for _ in 0..5 {
            let batch = wl.generate_batch(60);
            for gen in &batch {
                fees += gen.tx.fee();
                for set in sets.iter_mut() {
                    set.apply(&gen.tx);
                }
            }
            wl.confirm_pending();
        }
        let after: u64 = sets.iter().map(|s| s.total_value()).sum();
        assert_eq!(
            initial,
            after + fees,
            "value only leaves the system as fees"
        );
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        Workload::new(WorkloadConfig {
            cross_shard_ratio: 1.5,
            ..config(0.0, 0.0)
        });
    }
}
