//! Transactions and the UTXO value model.
//!
//! CycLedger is a payment processor over a UTXO state (§III-D): users are
//! partitioned into `m` shards, each committee maintains the UTXOs of its shard,
//! and the authentication function `V` accepts a transaction iff its inputs
//! exist, are unspent, and carry at least as much value as its outputs.
//!
//! Accounts are abstract 64-bit identifiers rather than public keys: the paper's
//! consensus machinery never inspects user signatures (transaction authorization
//! is orthogonal to committee consensus), so modelling them would only add
//! constant-factor noise to the measurements. The shard of an account is
//! `H(account) mod m`, mirroring the paper's uniform user partition.
//!
//! ## Memoized canonical encoding
//!
//! A transaction's canonical byte encoding and its digest are computed **once,
//! at construction**, and shared behind an `Arc`: `encoded_bytes()`, `id()`
//! and `wire_size()` are lookups, and cloning a transaction anywhere in the
//! round pipeline is a reference-count bump instead of a re-allocation of its
//! input/output vectors. This is sound because a transaction is immutable
//! after construction — there is no way to change inputs, outputs or nonce
//! without building a new transaction, so the cached encoding can never go
//! stale.

use std::cell::RefCell;
use std::sync::Arc;

use cycledger_crypto::fxhash::FxHashMap;
use cycledger_crypto::sha256::{hash_parts, Digest};

/// A user account identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AccountId(pub u64);

impl AccountId {
    /// The shard (committee index) responsible for this account.
    pub fn shard(&self, m: usize) -> usize {
        assert!(m > 0, "at least one shard");
        (self.shard_key() % m as u64) as usize
    }

    /// The account's shard-routing key: the first 8 bytes of
    /// `H("cycledger/account-shard" || account)`, independent of the shard
    /// count. Memoized per thread — shard routing is consulted for every
    /// input and output of every transaction on the round hot path, and the
    /// active account set is small and stable, so the SHA-256 evaluation
    /// happens once per account per worker thread instead of per lookup.
    fn shard_key(&self) -> u64 {
        thread_local! {
            static SHARD_KEYS: RefCell<FxHashMap<u64, u64>> = RefCell::new(FxHashMap::default());
        }
        SHARD_KEYS.with(|cache| {
            let mut cache = cache.borrow_mut();
            // Bound the memo so pathological workloads (unbounded fresh
            // accounts) cannot grow it without limit.
            if cache.len() > (1 << 16) {
                cache.clear();
            }
            *cache.entry(self.0).or_insert_with(|| {
                hash_parts(&[b"cycledger/account-shard", &self.0.to_be_bytes()]).prefix_u64()
            })
        })
    }
}

/// Identifier of a transaction: the hash of its canonical encoding.
pub type TxId = Digest;

/// A reference to an unspent output of a previous transaction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct OutPoint {
    /// The transaction that created the output.
    pub tx_id: TxId,
    /// Index of the output within that transaction.
    pub index: u32,
}

/// A transaction output: an amount of value assigned to an account.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxOutput {
    /// Receiving account.
    pub owner: AccountId,
    /// Value in minimal units.
    pub amount: u64,
}

/// A transaction input: a reference to the UTXO being spent plus the account
/// that owns it (kept explicit so shard routing never needs a UTXO lookup).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxInput {
    /// The UTXO being consumed.
    pub outpoint: OutPoint,
    /// Owner of the consumed UTXO.
    pub owner: AccountId,
    /// Value of the consumed UTXO as claimed by the transaction (validated
    /// against the UTXO set by the owning shard).
    pub amount: u64,
}

/// The immutable body shared by every clone of a transaction.
#[derive(Debug)]
struct TxBody {
    inputs: Vec<TxInput>,
    outputs: Vec<TxOutput>,
    nonce: u64,
    /// Canonical encoding, computed once at construction.
    encoded: Vec<u8>,
    /// `H("cycledger/txid" || encoded)`, computed once at construction.
    id: TxId,
}

/// A transfer of value from a set of UTXOs to a set of new outputs.
///
/// Immutable after construction; clones share the body (and its memoized
/// canonical encoding and digest) behind an `Arc`.
#[derive(Clone, Debug)]
pub struct Transaction {
    body: Arc<TxBody>,
}

impl PartialEq for Transaction {
    fn eq(&self, other: &Self) -> bool {
        // The canonical encoding is injective over (inputs, outputs, nonce).
        Arc::ptr_eq(&self.body, &other.body) || self.body.encoded == other.body.encoded
    }
}

impl Eq for Transaction {}

impl std::hash::Hash for Transaction {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Consistent with Eq: equal encodings have equal ids.
        self.body.id.hash(state);
    }
}

impl Transaction {
    /// Creates a transaction, computing its canonical encoding and digest.
    pub fn new(inputs: Vec<TxInput>, outputs: Vec<TxOutput>, nonce: u64) -> Self {
        let encoded = Self::encode_parts(&inputs, &outputs, nonce);
        let id = hash_parts(&[b"cycledger/txid", &encoded]);
        Transaction {
            body: Arc::new(TxBody {
                inputs,
                outputs,
                nonce,
                encoded,
                id,
            }),
        }
    }

    /// A coinbase/genesis transaction with no inputs, used to mint the initial
    /// UTXO set handed to each shard at simulation start.
    pub fn genesis(outputs: Vec<TxOutput>, nonce: u64) -> Self {
        Transaction::new(Vec::new(), outputs, nonce)
    }

    /// Consumed UTXOs.
    pub fn inputs(&self) -> &[TxInput] {
        &self.body.inputs
    }

    /// Created UTXOs.
    pub fn outputs(&self) -> &[TxOutput] {
        &self.body.outputs
    }

    /// Salt making otherwise-identical transfers distinct (e.g. two equal
    /// payments between the same accounts in one round).
    pub fn nonce(&self) -> u64 {
        self.body.nonce
    }

    /// True if this is a genesis (input-less) transaction.
    pub fn is_genesis(&self) -> bool {
        self.body.inputs.is_empty()
    }

    fn encode_parts(inputs: &[TxInput], outputs: &[TxOutput], nonce: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + inputs.len() * 52 + outputs.len() * 16);
        out.extend_from_slice(&nonce.to_be_bytes());
        out.extend_from_slice(&(inputs.len() as u32).to_be_bytes());
        for input in inputs {
            out.extend_from_slice(input.outpoint.tx_id.as_bytes());
            out.extend_from_slice(&input.outpoint.index.to_be_bytes());
            out.extend_from_slice(&input.owner.0.to_be_bytes());
            out.extend_from_slice(&input.amount.to_be_bytes());
        }
        out.extend_from_slice(&(outputs.len() as u32).to_be_bytes());
        for output in outputs {
            out.extend_from_slice(&output.owner.0.to_be_bytes());
            out.extend_from_slice(&output.amount.to_be_bytes());
        }
        out
    }

    /// The memoized canonical encoding, used for hashing, Merkle leaves and
    /// wire-size estimation.
    pub fn encoded_bytes(&self) -> &[u8] {
        &self.body.encoded
    }

    /// The transaction identifier (hash of the canonical encoding), memoized
    /// at construction.
    pub fn id(&self) -> TxId {
        self.body.id
    }

    /// Wire size in bytes, used when charging the transaction to the network.
    pub fn wire_size(&self) -> u64 {
        self.body.encoded.len() as u64
    }

    /// Total input value.
    pub fn input_sum(&self) -> u64 {
        self.inputs().iter().map(|i| i.amount).sum()
    }

    /// Total output value.
    pub fn output_sum(&self) -> u64 {
        self.outputs().iter().map(|o| o.amount).sum()
    }

    /// Transaction fee (`inputs - outputs`); zero for genesis transactions.
    pub fn fee(&self) -> u64 {
        if self.is_genesis() {
            0
        } else {
            self.input_sum().saturating_sub(self.output_sum())
        }
    }

    /// The outpoints this transaction creates, paired with their outputs.
    pub fn created_utxos(&self) -> Vec<(OutPoint, TxOutput)> {
        let id = self.id();
        self.outputs()
            .iter()
            .enumerate()
            .map(|(i, o)| {
                (
                    OutPoint {
                        tx_id: id,
                        index: i as u32,
                    },
                    *o,
                )
            })
            .collect()
    }

    /// Shards that hold an *input* of this transaction (they must validate it).
    pub fn input_shards(&self, m: usize) -> Vec<usize> {
        let mut shards: Vec<usize> = self.inputs().iter().map(|i| i.owner.shard(m)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// Shards that receive an *output* of this transaction.
    pub fn output_shards(&self, m: usize) -> Vec<usize> {
        let mut shards: Vec<usize> = self.outputs().iter().map(|o| o.owner.shard(m)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// All shards touched by this transaction.
    pub fn touched_shards(&self, m: usize) -> Vec<usize> {
        let mut shards = self.input_shards(m);
        shards.extend(self.output_shards(m));
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// True if all inputs and outputs live in a single shard (an intra-shard
    /// transaction, handled by Algorithm 5 alone).
    pub fn is_intra_shard(&self, m: usize) -> bool {
        self.touched_shards(m).len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tx() -> Transaction {
        let genesis = Transaction::genesis(
            vec![TxOutput {
                owner: AccountId(1),
                amount: 100,
            }],
            0,
        );
        let outpoint = genesis.created_utxos()[0].0;
        Transaction::new(
            vec![TxInput {
                outpoint,
                owner: AccountId(1),
                amount: 100,
            }],
            vec![
                TxOutput {
                    owner: AccountId(2),
                    amount: 60,
                },
                TxOutput {
                    owner: AccountId(1),
                    amount: 30,
                },
            ],
            7,
        )
    }

    #[test]
    fn id_is_deterministic_and_sensitive() {
        let tx = sample_tx();
        assert_eq!(tx.id(), tx.id());
        let other = Transaction::new(tx.inputs().to_vec(), tx.outputs().to_vec(), tx.nonce() + 1);
        assert_ne!(tx.id(), other.id());
        let mut outputs = tx.outputs().to_vec();
        outputs[0].amount += 1;
        let other = Transaction::new(tx.inputs().to_vec(), outputs, tx.nonce());
        assert_ne!(tx.id(), other.id());
    }

    #[test]
    fn memoized_encoding_matches_rebuild_and_clone_shares_it() {
        let tx = sample_tx();
        // Rebuilding from the same parts yields the same bytes and id.
        let rebuilt = Transaction::new(tx.inputs().to_vec(), tx.outputs().to_vec(), tx.nonce());
        assert_eq!(tx.encoded_bytes(), rebuilt.encoded_bytes());
        assert_eq!(tx.id(), rebuilt.id());
        assert_eq!(tx, rebuilt, "structurally equal without shared body");
        // Clones share the body: same encoding address, no re-encode.
        let clone = tx.clone();
        assert_eq!(
            tx.encoded_bytes().as_ptr(),
            clone.encoded_bytes().as_ptr(),
            "clone must share the memoized encoding"
        );
        assert_eq!(tx, clone);
    }

    #[test]
    fn sums_and_fee() {
        let tx = sample_tx();
        assert_eq!(tx.input_sum(), 100);
        assert_eq!(tx.output_sum(), 90);
        assert_eq!(tx.fee(), 10);
        let genesis = Transaction::genesis(vec![], 0);
        assert!(genesis.is_genesis());
        assert_eq!(genesis.fee(), 0);
    }

    #[test]
    fn created_utxos_enumerate_outputs() {
        let tx = sample_tx();
        let created = tx.created_utxos();
        assert_eq!(created.len(), 2);
        assert_eq!(created[0].0.tx_id, tx.id());
        assert_eq!(created[0].0.index, 0);
        assert_eq!(created[1].0.index, 1);
        assert_eq!(created[0].1.owner, AccountId(2));
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for m in [1usize, 2, 5, 16] {
            for account in 0..50u64 {
                let s = AccountId(account).shard(m);
                assert!(s < m);
                assert_eq!(s, AccountId(account).shard(m));
            }
        }
    }

    #[test]
    fn shard_key_memo_matches_direct_hash() {
        // The thread-local memo must return exactly the uncached digest prefix.
        for account in [0u64, 1, 42, u64::MAX] {
            let direct =
                hash_parts(&[b"cycledger/account-shard", &account.to_be_bytes()]).prefix_u64();
            for m in [1usize, 3, 7] {
                assert_eq!(AccountId(account).shard(m), (direct % m as u64) as usize);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        AccountId(1).shard(0);
    }

    #[test]
    fn shard_distribution_is_roughly_uniform() {
        let m = 4;
        let mut counts = vec![0usize; m];
        for account in 0..4000u64 {
            counts[AccountId(account).shard(m)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..=1300).contains(&c),
                "skewed shard distribution: {counts:?}"
            );
        }
    }

    #[test]
    fn intra_vs_cross_shard_classification() {
        let m = 8;
        // Find two accounts in the same shard and two in different shards.
        let a = AccountId(0);
        let same = (1..200)
            .map(AccountId)
            .find(|b| b.shard(m) == a.shard(m))
            .expect("some account shares a shard");
        let diff = (1..200)
            .map(AccountId)
            .find(|b| b.shard(m) != a.shard(m))
            .expect("some account is in another shard");
        let mk = |to: AccountId| {
            Transaction::new(
                vec![TxInput {
                    outpoint: OutPoint {
                        tx_id: Digest::ZERO,
                        index: 0,
                    },
                    owner: a,
                    amount: 10,
                }],
                vec![TxOutput {
                    owner: to,
                    amount: 9,
                }],
                0,
            )
        };
        assert!(mk(same).is_intra_shard(m));
        assert!(!mk(diff).is_intra_shard(m));
        assert_eq!(mk(diff).touched_shards(m).len(), 2);
        assert_eq!(mk(diff).input_shards(m), vec![a.shard(m)]);
    }

    #[test]
    fn wire_size_tracks_encoding() {
        let tx = sample_tx();
        assert_eq!(tx.wire_size(), tx.encoded_bytes().len() as u64);
        assert!(tx.wire_size() > 60);
    }
}
