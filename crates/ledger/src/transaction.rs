//! Transactions and the UTXO value model.
//!
//! CycLedger is a payment processor over a UTXO state (§III-D): users are
//! partitioned into `m` shards, each committee maintains the UTXOs of its shard,
//! and the authentication function `V` accepts a transaction iff its inputs
//! exist, are unspent, and carry at least as much value as its outputs.
//!
//! Accounts are abstract 64-bit identifiers rather than public keys: the paper's
//! consensus machinery never inspects user signatures (transaction authorization
//! is orthogonal to committee consensus), so modelling them would only add
//! constant-factor noise to the measurements. The shard of an account is
//! `H(account) mod m`, mirroring the paper's uniform user partition.

use cycledger_crypto::sha256::{hash_parts, Digest};

/// A user account identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AccountId(pub u64);

impl AccountId {
    /// The shard (committee index) responsible for this account.
    pub fn shard(&self, m: usize) -> usize {
        assert!(m > 0, "at least one shard");
        let digest = hash_parts(&[b"cycledger/account-shard", &self.0.to_be_bytes()]);
        (digest.prefix_u64() % m as u64) as usize
    }
}

/// Identifier of a transaction: the hash of its canonical encoding.
pub type TxId = Digest;

/// A reference to an unspent output of a previous transaction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct OutPoint {
    /// The transaction that created the output.
    pub tx_id: TxId,
    /// Index of the output within that transaction.
    pub index: u32,
}

/// A transaction output: an amount of value assigned to an account.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxOutput {
    /// Receiving account.
    pub owner: AccountId,
    /// Value in minimal units.
    pub amount: u64,
}

/// A transaction input: a reference to the UTXO being spent plus the account
/// that owns it (kept explicit so shard routing never needs a UTXO lookup).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxInput {
    /// The UTXO being consumed.
    pub outpoint: OutPoint,
    /// Owner of the consumed UTXO.
    pub owner: AccountId,
    /// Value of the consumed UTXO as claimed by the transaction (validated
    /// against the UTXO set by the owning shard).
    pub amount: u64,
}

/// A transfer of value from a set of UTXOs to a set of new outputs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    /// Consumed UTXOs.
    pub inputs: Vec<TxInput>,
    /// Created UTXOs.
    pub outputs: Vec<TxOutput>,
    /// Salt making otherwise-identical transfers distinct (e.g. two equal
    /// payments between the same accounts in one round).
    pub nonce: u64,
}

impl Transaction {
    /// Creates a transaction.
    pub fn new(inputs: Vec<TxInput>, outputs: Vec<TxOutput>, nonce: u64) -> Self {
        Transaction {
            inputs,
            outputs,
            nonce,
        }
    }

    /// A coinbase/genesis transaction with no inputs, used to mint the initial
    /// UTXO set handed to each shard at simulation start.
    pub fn genesis(outputs: Vec<TxOutput>, nonce: u64) -> Self {
        Transaction {
            inputs: Vec::new(),
            outputs,
            nonce,
        }
    }

    /// True if this is a genesis (input-less) transaction.
    pub fn is_genesis(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Canonical encoding used for hashing and for wire-size estimation.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.inputs.len() * 52 + self.outputs.len() * 16);
        out.extend_from_slice(&self.nonce.to_be_bytes());
        out.extend_from_slice(&(self.inputs.len() as u32).to_be_bytes());
        for input in &self.inputs {
            out.extend_from_slice(input.outpoint.tx_id.as_bytes());
            out.extend_from_slice(&input.outpoint.index.to_be_bytes());
            out.extend_from_slice(&input.owner.0.to_be_bytes());
            out.extend_from_slice(&input.amount.to_be_bytes());
        }
        out.extend_from_slice(&(self.outputs.len() as u32).to_be_bytes());
        for output in &self.outputs {
            out.extend_from_slice(&output.owner.0.to_be_bytes());
            out.extend_from_slice(&output.amount.to_be_bytes());
        }
        out
    }

    /// The transaction identifier (hash of the canonical encoding).
    pub fn id(&self) -> TxId {
        hash_parts(&[b"cycledger/txid", &self.encode()])
    }

    /// Wire size in bytes, used when charging the transaction to the network.
    pub fn wire_size(&self) -> u64 {
        self.encode().len() as u64
    }

    /// Total input value.
    pub fn input_sum(&self) -> u64 {
        self.inputs.iter().map(|i| i.amount).sum()
    }

    /// Total output value.
    pub fn output_sum(&self) -> u64 {
        self.outputs.iter().map(|o| o.amount).sum()
    }

    /// Transaction fee (`inputs - outputs`); zero for genesis transactions.
    pub fn fee(&self) -> u64 {
        if self.is_genesis() {
            0
        } else {
            self.input_sum().saturating_sub(self.output_sum())
        }
    }

    /// The outpoints this transaction creates, paired with their outputs.
    pub fn created_utxos(&self) -> Vec<(OutPoint, TxOutput)> {
        let id = self.id();
        self.outputs
            .iter()
            .enumerate()
            .map(|(i, o)| {
                (
                    OutPoint {
                        tx_id: id,
                        index: i as u32,
                    },
                    *o,
                )
            })
            .collect()
    }

    /// Shards that hold an *input* of this transaction (they must validate it).
    pub fn input_shards(&self, m: usize) -> Vec<usize> {
        let mut shards: Vec<usize> = self.inputs.iter().map(|i| i.owner.shard(m)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// Shards that receive an *output* of this transaction.
    pub fn output_shards(&self, m: usize) -> Vec<usize> {
        let mut shards: Vec<usize> = self.outputs.iter().map(|o| o.owner.shard(m)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// All shards touched by this transaction.
    pub fn touched_shards(&self, m: usize) -> Vec<usize> {
        let mut shards = self.input_shards(m);
        shards.extend(self.output_shards(m));
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// True if all inputs and outputs live in a single shard (an intra-shard
    /// transaction, handled by Algorithm 5 alone).
    pub fn is_intra_shard(&self, m: usize) -> bool {
        self.touched_shards(m).len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tx() -> Transaction {
        let genesis = Transaction::genesis(
            vec![TxOutput {
                owner: AccountId(1),
                amount: 100,
            }],
            0,
        );
        let outpoint = genesis.created_utxos()[0].0;
        Transaction::new(
            vec![TxInput {
                outpoint,
                owner: AccountId(1),
                amount: 100,
            }],
            vec![
                TxOutput {
                    owner: AccountId(2),
                    amount: 60,
                },
                TxOutput {
                    owner: AccountId(1),
                    amount: 30,
                },
            ],
            7,
        )
    }

    #[test]
    fn id_is_deterministic_and_sensitive() {
        let tx = sample_tx();
        assert_eq!(tx.id(), tx.id());
        let mut other = tx.clone();
        other.nonce += 1;
        assert_ne!(tx.id(), other.id());
        let mut other = tx.clone();
        other.outputs[0].amount += 1;
        assert_ne!(tx.id(), other.id());
    }

    #[test]
    fn sums_and_fee() {
        let tx = sample_tx();
        assert_eq!(tx.input_sum(), 100);
        assert_eq!(tx.output_sum(), 90);
        assert_eq!(tx.fee(), 10);
        let genesis = Transaction::genesis(vec![], 0);
        assert!(genesis.is_genesis());
        assert_eq!(genesis.fee(), 0);
    }

    #[test]
    fn created_utxos_enumerate_outputs() {
        let tx = sample_tx();
        let created = tx.created_utxos();
        assert_eq!(created.len(), 2);
        assert_eq!(created[0].0.tx_id, tx.id());
        assert_eq!(created[0].0.index, 0);
        assert_eq!(created[1].0.index, 1);
        assert_eq!(created[0].1.owner, AccountId(2));
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for m in [1usize, 2, 5, 16] {
            for account in 0..50u64 {
                let s = AccountId(account).shard(m);
                assert!(s < m);
                assert_eq!(s, AccountId(account).shard(m));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        AccountId(1).shard(0);
    }

    #[test]
    fn shard_distribution_is_roughly_uniform() {
        let m = 4;
        let mut counts = vec![0usize; m];
        for account in 0..4000u64 {
            counts[AccountId(account).shard(m)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..=1300).contains(&c),
                "skewed shard distribution: {counts:?}"
            );
        }
    }

    #[test]
    fn intra_vs_cross_shard_classification() {
        let m = 8;
        // Find two accounts in the same shard and two in different shards.
        let a = AccountId(0);
        let same = (1..200)
            .map(AccountId)
            .find(|b| b.shard(m) == a.shard(m))
            .expect("some account shares a shard");
        let diff = (1..200)
            .map(AccountId)
            .find(|b| b.shard(m) != a.shard(m))
            .expect("some account is in another shard");
        let mk = |to: AccountId| {
            Transaction::new(
                vec![TxInput {
                    outpoint: OutPoint {
                        tx_id: Digest::ZERO,
                        index: 0,
                    },
                    owner: a,
                    amount: 10,
                }],
                vec![TxOutput {
                    owner: to,
                    amount: 9,
                }],
                0,
            )
        };
        assert!(mk(same).is_intra_shard(m));
        assert!(!mk(diff).is_intra_shard(m));
        assert_eq!(mk(diff).touched_shards(m).len(), 2);
        assert_eq!(mk(diff).input_shards(m), vec![a.shard(m)]);
    }

    #[test]
    fn wire_size_tracks_encoding() {
        let tx = sample_tx();
        assert_eq!(tx.wire_size(), tx.encode().len() as u64);
        assert!(tx.wire_size() > 60);
    }
}
