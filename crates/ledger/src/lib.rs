//! # cycledger-ledger
//!
//! The UTXO ledger substrate of the CycLedger reproduction:
//!
//! * [`transaction`] — accounts, outpoints, transactions, shard routing.
//! * [`utxo`] — per-shard UTXO sets and the authentication function `V`
//!   (existence, no double spend, value conservation — §III-D).
//! * [`store`] — the pluggable [`StateStore`] layer: flat map or sparse
//!   Merkle tree behind one statically-dispatched enum.
//! * [`smt`] — the authenticated backend: a compressed sparse Merkle tree
//!   with copy-on-write versioned roots and per-round batch commits.
//! * [`block`] — blocks assembled by the referee committee, carrying the next
//!   round's configuration, and a structurally-verified chain.
//! * [`workload`] — deterministic external-user workload generation with
//!   configurable cross-shard and invalid-transaction ratios.

#![warn(missing_docs)]

pub mod block;
pub mod smt;
pub mod store;
pub mod transaction;
pub mod utxo;
pub mod workload;

pub use block::{Block, BlockHeader, Chain, ChainError, NextRoundConfig};
pub use smt::SmtStore;
pub use store::{MapStore, StateBackend, StateStore, Store};
pub use transaction::{AccountId, OutPoint, Transaction, TxId, TxInput, TxOutput};
pub use utxo::{validate_across_shards, UtxoSet, ValidationError};
pub use workload::{GeneratedTx, TxKind, Workload, WorkloadConfig};
