//! # cycledger-scenarios
//!
//! The declarative scenario subsystem: every paper claim as a named,
//! reproducible, CI-gated artifact.
//!
//! A [`Scenario`] bundles a full simulation setup — protocol parameters,
//! adversary mix, latency profile, workload shape, targeted fault
//! injections — with machine-checkable [`Invariant`]s (safety digests match
//! across worker counts, no honest node punished, censored cross-shard
//! transactions eventually apply, recovery fires for every injected leader
//! fault, the analysis crate's failure bound holds, …). The built-in
//! [`registry`] covers each adversarial behaviour of §III-C plus
//! mixed-adversary and scaling sweeps; TOML files add or override scenarios
//! without recompiling ([`toml_cfg`]).
//!
//! The [`runner`] executes a scenario across its whole worker matrix
//! (checking the engine's determinism contract as it goes), evaluates the
//! invariants, and the `scenario-runner` binary turns the results into
//! canonical JSON reports diffed against the committed golden files under
//! `scenarios/golden/`.
//!
//! * [`spec`] — the `Scenario` data model and fault-injection targets.
//! * [`invariant`] — the invariant vocabulary and its checkers.
//! * [`registry`] — the built-in scenario matrix.
//! * [`runner`] — single-scenario execution and the parallel matrix runner.
//! * [`report`] — canonical JSON report rendering.
//! * [`toml_cfg`] — the TOML schema (load + save, dependency-free).
//!
//! [`Scenario`]: spec::Scenario
//! [`Invariant`]: invariant::Invariant

#![warn(missing_docs)]

pub mod invariant;
pub mod outcome;
pub mod registry;
pub mod report;
pub mod runner;
pub mod spec;
pub mod toml_cfg;

pub use invariant::{Invariant, InvariantResult};
pub use outcome::ScenarioOutcome;
pub use registry::builtin_scenarios;
pub use runner::{run_matrix, run_scenario, ScenarioRun};
pub use spec::{FaultInjection, FaultTarget, Scenario};
