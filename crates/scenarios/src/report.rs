//! Canonical per-scenario JSON reports.
//!
//! The renderer is hand-rolled (the workspace is dependency-free) and emits
//! every field in a fixed order with fixed float formatting, so two runs of
//! the same scenario produce byte-identical files. Golden gating is plain
//! string equality against the committed files under `scenarios/golden/`.

use cycledger_ledger::StateBackend;
use cycledger_protocol::adversary::AdversaryConfig;

use crate::runner::ScenarioRun;
use crate::spec::{behavior_name, mix_name};

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            other => out.push(other),
        }
    }
    out
}

/// Renders the canonical JSON report for one scenario run.
pub fn render_report(run: &ScenarioRun) -> String {
    let outcome = &run.outcome;
    let scenario = &outcome.scenario;
    let cfg = &scenario.config;
    let summary = &outcome.summary;

    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"cycledger-scenario-report/v1\",\n");
    out.push_str(&format!(
        "  \"name\": \"{}\",\n",
        escape_json(&scenario.name)
    ));
    out.push_str(&format!(
        "  \"paper_claim\": \"{}\",\n",
        escape_json(&scenario.paper_claim)
    ));
    out.push_str(&format!(
        "  \"description\": \"{}\",\n",
        escape_json(&scenario.description)
    ));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"rounds\": {},\n", scenario.rounds));
    out.push_str(&format!("  \"smoke\": {},\n", scenario.smoke));

    out.push_str("  \"config\": {\n");
    out.push_str(&format!("    \"committees\": {},\n", cfg.committees));
    out.push_str(&format!(
        "    \"committee_size\": {},\n",
        cfg.committee_size
    ));
    out.push_str(&format!(
        "    \"partial_set_size\": {},\n",
        cfg.partial_set_size
    ));
    out.push_str(&format!("    \"referee_size\": {},\n", cfg.referee_size));
    out.push_str(&format!("    \"total_nodes\": {},\n", cfg.total_nodes()));
    out.push_str(&format!("    \"txs_per_round\": {},\n", cfg.txs_per_round));
    out.push_str(&format!(
        "    \"cross_shard_ratio\": {:?},\n",
        cfg.cross_shard_ratio
    ));
    out.push_str(&format!(
        "    \"invalid_ratio\": {:?},\n",
        cfg.invalid_ratio
    ));
    out.push_str(&format!(
        "    \"malicious_fraction\": {:?},\n",
        cfg.adversary.malicious_fraction
    ));
    out.push_str(&format!(
        "    \"mix\": \"{}\",\n",
        escape_json(&mix_name(cfg.adversary.mix))
    ));
    // `message_driven`, the epoch knobs, the traffic block and the state
    // backend are emitted only when on, so reports (and goldens) of
    // scenarios predating any of these extensions keep their exact
    // pre-extension bytes.
    let epochs_on = cfg.epoch_length > 0;
    let traffic_on = cfg.traffic.is_some();
    let state_on = cfg.state_backend == StateBackend::Smt;
    out.push_str(&format!(
        "    \"verify_signatures\": {}{}\n",
        cfg.verify_signatures,
        if cfg.message_driven || epochs_on || traffic_on || state_on {
            ","
        } else {
            ""
        }
    ));
    if cfg.message_driven {
        out.push_str(&format!(
            "    \"message_driven\": true{}\n",
            if epochs_on || traffic_on || state_on {
                ","
            } else {
                ""
            }
        ));
    }
    if epochs_on {
        out.push_str(&format!("    \"epoch_length\": {},\n", cfg.epoch_length));
        out.push_str(&format!(
            "    \"joins_per_epoch\": {},\n",
            cfg.joins_per_epoch
        ));
        out.push_str(&format!(
            "    \"leaves_per_epoch\": {}{}\n",
            cfg.leaves_per_epoch,
            if traffic_on || state_on { "," } else { "" }
        ));
    }
    if let Some(traffic) = &cfg.traffic {
        out.push_str(&format!(
            "    \"traffic_rate_tps\": {:?},\n",
            traffic.rate_tps
        ));
        out.push_str(&format!(
            "    \"traffic_shape\": \"{}\",\n",
            traffic.shape.name()
        ));
        out.push_str(&format!(
            "    \"traffic_warmup_rounds\": {}{}\n",
            traffic.warmup_rounds,
            if state_on { "," } else { "" }
        ));
    }
    if state_on {
        out.push_str(&format!(
            "    \"state_backend\": \"{}\"\n",
            cfg.state_backend.name()
        ));
    }
    out.push_str("  },\n");

    out.push_str(&format!("  \"digest\": \"{}\",\n", outcome.digest));
    out.push_str("  \"worker_digests\": [\n");
    for (i, (workers, digest)) in outcome.worker_digests.iter().enumerate() {
        let comma = if i + 1 < outcome.worker_digests.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{ \"workers\": {workers}, \"digest\": \"{digest}\" }}{comma}\n"
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"rerun_digest\": \"{}\",\n",
        outcome.rerun_digest
    ));

    out.push_str("  \"adversary\": {\n");
    out.push_str(&format!(
        "    \"malicious_nodes\": {},\n",
        outcome.malicious_count
    ));
    out.push_str(&format!(
        "    \"max_corrupted\": {}\n",
        AdversaryConfig::max_corrupted(outcome.total_nodes)
    ));
    out.push_str("  },\n");

    out.push_str("  \"injected_faults\": [\n");
    for (i, fault) in outcome.injected.iter().enumerate() {
        let comma = if i + 1 < outcome.injected.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{ \"round\": {}, \"node\": {}, \"behavior\": \"{}\" }}{comma}\n",
            fault.round,
            fault.node.0,
            behavior_name(fault.behavior)
        ));
    }
    out.push_str("  ],\n");

    // Scheduled network faults (message-driven scenarios only; omitted
    // entirely otherwise so classic reports keep their exact bytes).
    if !scenario.net_faults.is_empty() {
        out.push_str("  \"net_faults\": [\n");
        for (i, fault) in scenario.net_faults.iter().enumerate() {
            let comma = if i + 1 < scenario.net_faults.len() {
                ","
            } else {
                ""
            };
            // Per-kind fields, each with its leading separator so a kind
            // without parameters (isolate-joiners) emits nothing extra.
            let detail = match fault.kind {
                crate::spec::NetFaultKind::IsolateLeader { committee } => {
                    format!(", \"committee\": {committee}")
                }
                crate::spec::NetFaultKind::IsolateCommons { committee, count } => {
                    format!(", \"committee\": {committee}, \"count\": {count}")
                }
                crate::spec::NetFaultKind::Delay { target, micros } => {
                    format!(
                        ", \"target\": \"{}\", \"delay_us\": {micros}",
                        escape_json(&target.to_spec())
                    )
                }
                crate::spec::NetFaultKind::Loss { ppm } => format!(", \"loss_ppm\": {ppm}"),
                crate::spec::NetFaultKind::CrashStop { target } => {
                    format!(", \"target\": \"{}\"", escape_json(&target.to_spec()))
                }
                crate::spec::NetFaultKind::IsolateJoiners => String::new(),
            };
            out.push_str(&format!(
                "    {{ \"from_round\": {}, \"until_round\": {}, \"kind\": \"{}\"{detail} }}{comma}\n",
                fault.from_round,
                fault.until_round,
                fault.kind.name()
            ));
        }
        out.push_str("  ],\n");
    }

    let cross_packed: usize = summary
        .rounds
        .iter()
        .map(|r| r.txs_packed_cross_shard)
        .sum();
    out.push_str("  \"metrics\": {\n");
    out.push_str(&format!(
        "    \"blocks_produced\": {},\n",
        summary.blocks_produced()
    ));
    out.push_str(&format!(
        "    \"chain_height\": {},\n",
        outcome.chain_height
    ));
    out.push_str(&format!(
        "    \"total_packed\": {},\n",
        summary.total_packed()
    ));
    out.push_str(&format!(
        "    \"total_cross_shard_packed\": {cross_packed},\n"
    ));
    out.push_str(&format!(
        "    \"mean_acceptance_rate\": {:.6},\n",
        summary.mean_acceptance_rate()
    ));
    out.push_str(&format!(
        "    \"evictions\": {},\n",
        summary.total_evictions()
    ));
    out.push_str(&format!(
        "    \"witnesses\": {},\n",
        summary.total_witnesses()
    ));
    out.push_str(&format!(
        "    \"censorship_reports\": {},\n",
        summary.total_censorship_reports()
    ));
    out.push_str(&format!(
        "    \"skipped_recoveries\": {},\n",
        summary.total_skipped_recoveries()
    ));
    out.push_str(&format!(
        "    \"punished_honest\": {}\n",
        summary.punished_honest().len()
    ));
    out.push_str("  },\n");

    // Message-driven network measurements (omitted for classic scenarios).
    if cfg.message_driven {
        out.push_str("  \"network\": {\n");
        out.push_str(&format!(
            "    \"quorum_timeouts\": {},\n",
            summary.total_quorum_timeouts()
        ));
        out.push_str(&format!(
            "    \"list_timeouts\": {},\n",
            summary.total_list_timeouts()
        ));
        out.push_str(&format!(
            "    \"votes_missing\": {},\n",
            summary.total_votes_missing()
        ));
        out.push_str(&format!(
            "    \"net_dropped_messages\": {},\n",
            summary.total_net_dropped_messages()
        ));
        out.push_str(&format!(
            "    \"duplicate_packed_txs\": {}\n",
            outcome.duplicate_packed_txs
        ));
        out.push_str("  },\n");
    }

    // Epoch lifecycle measurements (omitted when epochs are disabled).
    if epochs_on {
        let joined: usize = summary
            .rounds
            .iter()
            .filter_map(|r| r.epoch_transition.as_ref())
            .map(|t| t.joined.len())
            .sum();
        let left: usize = summary
            .rounds
            .iter()
            .filter_map(|r| r.epoch_transition.as_ref())
            .map(|t| t.left.len())
            .sum();
        let still_syncing = summary
            .rounds
            .iter()
            .filter_map(|r| r.epoch_transition.as_ref())
            .next_back()
            .map_or(0, |t| t.still_syncing);
        let reshuffled_seats: usize = summary
            .rounds
            .iter()
            .filter_map(|r| r.epoch_transition.as_ref())
            .map(|t| t.reshuffled_seats)
            .sum();
        out.push_str("  \"epochs\": {\n");
        out.push_str(&format!(
            "    \"transitions\": {},\n",
            summary.total_epoch_transitions()
        ));
        out.push_str(&format!("    \"joined\": {joined},\n"));
        out.push_str(&format!("    \"left\": {left},\n"));
        out.push_str(&format!("    \"synced\": {},\n", summary.total_synced()));
        out.push_str(&format!("    \"still_syncing\": {still_syncing},\n"));
        out.push_str(&format!(
            "    \"sync_timeouts\": {},\n",
            summary.total_sync_timeouts()
        ));
        out.push_str(&format!("    \"reshuffled_seats\": {reshuffled_seats},\n"));
        out.push_str(&format!(
            "    \"syncing_abstentions\": {},\n",
            summary.total_syncing_abstentions()
        ));
        out.push_str(&format!(
            "    \"syncing_votes\": {}\n",
            summary.total_syncing_votes()
        ));
        out.push_str("  },\n");
    }

    // Open-loop traffic measurements (omitted for closed-loop scenarios).
    // Percentiles are µs of *virtual* time — machine-independent, so they
    // golden-gate exactly like every integer counter.
    if let Some(traffic) = &outcome.traffic {
        out.push_str("  \"traffic\": {\n");
        out.push_str(&format!("    \"injected\": {},\n", traffic.injected));
        out.push_str(&format!(
            "    \"rejected_invalid\": {},\n",
            traffic.rejected_invalid
        ));
        out.push_str(&format!("    \"confirmed\": {},\n", traffic.confirmed));
        out.push_str(&format!("    \"censored\": {},\n", traffic.censored));
        out.push_str(&format!("    \"backlog\": {},\n", traffic.backlog));
        out.push_str(&format!(
            "    \"virtual_elapsed_us\": {},\n",
            traffic.virtual_elapsed_us
        ));
        out.push_str(&format!(
            "    \"sustained_tps\": {:.6},\n",
            traffic.sustained_tps()
        ));
        out.push_str(&format!("    \"latency_samples\": {},\n", traffic.samples));
        out.push_str(&format!("    \"p50_us\": {},\n", traffic.p50_us));
        out.push_str(&format!("    \"p99_us\": {},\n", traffic.p99_us));
        out.push_str(&format!("    \"p999_us\": {},\n", traffic.p999_us));
        out.push_str(&format!("    \"max_us\": {},\n", traffic.max_us));
        out.push_str(&format!("    \"mean_us\": {:.6},\n", traffic.mean_us));
        out.push_str(&format!("    \"p99_delta\": {:.6}\n", traffic.p99_delta()));
        out.push_str("  },\n");
    }

    // Authenticated-state measurements (omitted under the map backend, so
    // every pre-smt golden keeps its exact bytes). The final roots are the
    // last round's published per-shard commitments; the proof counters come
    // from the runner's light-client audit against exactly those roots.
    if state_on {
        let audit = outcome.proof_audit.unwrap_or_default();
        out.push_str("  \"state\": {\n");
        out.push_str(&format!(
            "    \"backend\": \"{}\",\n",
            cfg.state_backend.name()
        ));
        out.push_str(&format!("    \"shards\": {},\n", cfg.committees));
        out.push_str("    \"final_state_roots\": [\n");
        let final_roots = summary
            .rounds
            .last()
            .map(|r| r.state_roots.as_slice())
            .unwrap_or_default();
        for (i, root) in final_roots.iter().enumerate() {
            let comma = if i + 1 < final_roots.len() { "," } else { "" };
            out.push_str(&format!("      \"{}\"{comma}\n", root.to_hex()));
        }
        out.push_str("    ],\n");
        out.push_str(&format!(
            "    \"inclusion_proofs_checked\": {},\n",
            audit.inclusion_checked
        ));
        out.push_str(&format!(
            "    \"inclusion_proofs_verified\": {},\n",
            audit.inclusion_verified
        ));
        out.push_str(&format!(
            "    \"exclusion_proofs_checked\": {},\n",
            audit.exclusion_checked
        ));
        out.push_str(&format!(
            "    \"exclusion_proofs_verified\": {},\n",
            audit.exclusion_verified
        ));
        out.push_str(&format!(
            "    \"root_mismatches\": {}\n",
            audit.root_mismatches
        ));
        out.push_str("  },\n");
    }

    out.push_str("  \"invariants\": [\n");
    for (i, result) in run.invariants.iter().enumerate() {
        let comma = if i + 1 < run.invariants.len() {
            ","
        } else {
            ""
        };
        let status = if result.passed { "pass" } else { "FAIL" };
        out.push_str(&format!(
            "    {{ \"invariant\": \"{}\", \"status\": \"{status}\", \"detail\": \"{}\" }}{comma}\n",
            escape_json(&result.invariant),
            escape_json(&result.detail)
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
