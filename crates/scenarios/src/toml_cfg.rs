//! Loading and saving scenarios as TOML, with no external dependencies.
//!
//! The workspace is fully offline, so this module implements the small TOML
//! subset the scenario schema needs: `[[scenario]]` array-of-table headers
//! (plus `[[scenario.faults]]` sub-tables), `key = value` pairs with
//! strings, integers, floats, booleans and single-line arrays, and `#`
//! comments. Unknown keys are rejected — a typo in a scenario file should
//! fail loudly, not silently fall back to a default.
//!
//! The serializer writes every field in a fixed order, and
//! `parse(serialize(s))` reproduces `s` exactly — pinned by the round-trip
//! tests in `tests/scenario_matrix.rs`.

use cycledger_net::latency::LatencyConfig;
use cycledger_net::time::SimDuration;
use cycledger_protocol::adversary::Behavior;
use cycledger_protocol::config::ProtocolConfig;
use cycledger_protocol::traffic::{ArrivalShape, TrafficConfig};

use crate::invariant::Invariant;
use crate::spec::{
    behavior_from_name, behavior_name, mix_from_name, mix_name, FaultInjection, FaultTarget,
    NetFaultInjection, NetFaultKind, Scenario,
};

/// A parsed TOML value (the subset the scenario schema uses).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A single-line array.
    Array(Vec<Value>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }

    fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!("expected a string, got {}", other.type_name())),
        }
    }

    fn as_usize(&self) -> Result<usize, String> {
        match self {
            Value::Int(i) if *i >= 0 => Ok(*i as usize),
            other => Err(format!(
                "expected a non-negative integer, got {}",
                other.type_name()
            )),
        }
    }

    fn as_u64(&self) -> Result<u64, String> {
        match self {
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            other => Err(format!(
                "expected a non-negative integer, got {}",
                other.type_name()
            )),
        }
    }

    fn as_u32(&self) -> Result<u32, String> {
        let v = self.as_u64()?;
        u32::try_from(v).map_err(|_| format!("{v} does not fit in 32 bits"))
    }

    fn as_f64(&self) -> Result<f64, String> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(format!("expected a number, got {}", other.type_name())),
        }
    }

    fn as_bool(&self) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected a boolean, got {}", other.type_name())),
        }
    }
}

/// One `[header]` / `[[header]]` section with its key/value pairs.
#[derive(Clone, Debug)]
struct Section {
    header: String,
    entries: Vec<(String, Value)>,
    line: usize,
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(s: &str) -> Result<(String, &str), String> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    if chars.next().map(|(_, c)| c) != Some('"') {
        return Err(format!("expected a quoted string at {s:?}"));
    }
    let mut escaped = false;
    for (i, c) in chars {
        if escaped {
            match c {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                other => return Err(format!("unsupported escape \\{other}")),
            }
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => return Ok((out, &s[i + 1..])),
            other => out.push(other),
        }
    }
    Err(format!("unterminated string at {s:?}"))
}

fn parse_scalar(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if s.contains('.') || s.contains('e') || s.contains('E') {
        return s
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("bad float {s:?}"));
    }
    s.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("bad value {s:?}"))
}

fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if s.starts_with('"') {
        let (string, rest) = parse_string(s)?;
        if !rest.trim().is_empty() {
            return Err(format!("trailing data after string: {rest:?}"));
        }
        return Ok(Value::Str(string));
    }
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated array {s:?}"))?;
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            if rest.starts_with('"') {
                let (string, after) = parse_string(rest)?;
                items.push(Value::Str(string));
                rest = after.trim_start().strip_prefix(',').unwrap_or(after).trim();
            } else {
                let (item, after) = match rest.find(',') {
                    Some(i) => (&rest[..i], &rest[i + 1..]),
                    None => (rest, ""),
                };
                items.push(parse_scalar(item)?);
                rest = after.trim();
            }
        }
        return Ok(Value::Array(items));
    }
    parse_scalar(s)
}

/// Counts the bracket balance of a line, ignoring brackets inside strings.
fn bracket_balance(line: &str) -> i64 {
    let mut balance = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in line.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '[' if !in_string => balance += 1,
            ']' if !in_string => balance -= 1,
            _ => {}
        }
    }
    balance
}

/// Parses a TOML document into its sections (top-level keys before any
/// header are rejected — the scenario schema has none). Arrays may span
/// multiple lines; continuation lines are joined until brackets balance.
fn parse_sections(text: &str) -> Result<Vec<Section>, String> {
    let mut sections: Vec<Section> = Vec::new();
    let mut lines = text.lines().enumerate();
    while let Some((idx, raw)) = lines.next() {
        let mut line = strip_comment(raw).trim().to_string();
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        // Join continuation lines of a multi-line array.
        if line.contains('=') {
            let mut balance = bracket_balance(&line);
            while balance > 0 {
                let Some((_, next)) = lines.next() else {
                    return Err(format!("line {lineno}: unterminated multi-line array"));
                };
                let next = strip_comment(next).trim().to_string();
                balance += bracket_balance(&next);
                line.push(' ');
                line.push_str(&next);
            }
        }
        let line = line.as_str();
        if let Some(header) = line
            .strip_prefix("[[")
            .and_then(|h| h.strip_suffix("]]"))
            .or_else(|| line.strip_prefix('[').and_then(|h| h.strip_suffix(']')))
        {
            sections.push(Section {
                header: header.trim().to_string(),
                entries: Vec::new(),
                line: lineno,
            });
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`, got {line:?}"))?;
        let section = sections
            .last_mut()
            .ok_or_else(|| format!("line {lineno}: key outside any [[scenario]] section"))?;
        let value =
            parse_value(value).map_err(|e| format!("line {lineno} ({}): {e}", key.trim()))?;
        section.entries.push((key.trim().to_string(), value));
    }
    Ok(sections)
}

fn apply_scenario_key(scenario: &mut Scenario, key: &str, value: &Value) -> Result<(), String> {
    match key {
        "name" => scenario.name = value.as_str()?.to_string(),
        "description" => scenario.description = value.as_str()?.to_string(),
        "paper_claim" => scenario.paper_claim = value.as_str()?.to_string(),
        "rounds" => scenario.rounds = value.as_usize()?,
        "smoke" => scenario.smoke = value.as_bool()?,
        "workers" => {
            let Value::Array(items) = value else {
                return Err("workers must be an array of integers".into());
            };
            scenario.workers = items
                .iter()
                .map(|v| v.as_usize())
                .collect::<Result<Vec<_>, _>>()?;
        }
        "seed" => scenario.config.seed = value.as_u64()?,
        "committees" => scenario.config.committees = value.as_usize()?,
        "committee_size" => scenario.config.committee_size = value.as_usize()?,
        "partial_set_size" => scenario.config.partial_set_size = value.as_usize()?,
        "referee_size" => scenario.config.referee_size = value.as_usize()?,
        "txs_per_round" => scenario.config.txs_per_round = value.as_usize()?,
        "cross_shard_ratio" => scenario.config.cross_shard_ratio = value.as_f64()?,
        "invalid_ratio" => scenario.config.invalid_ratio = value.as_f64()?,
        "accounts_per_shard" => scenario.config.accounts_per_shard = value.as_usize()?,
        "pow_difficulty" => scenario.config.pow_difficulty = value.as_u32()?,
        "base_compute_capacity" => scenario.config.base_compute_capacity = value.as_u32()?,
        "compute_capacity_spread" => scenario.config.compute_capacity_spread = value.as_u32()?,
        "leader_bonus" => scenario.config.leader_bonus = value.as_f64()?,
        "latency_delta_us" => {
            scenario.config.latency.delta = SimDuration::from_micros(value.as_u64()?)
        }
        "latency_gamma_us" => {
            scenario.config.latency.gamma = SimDuration::from_micros(value.as_u64()?)
        }
        "latency_partial_us" => {
            scenario.config.latency.partial_bound = SimDuration::from_micros(value.as_u64()?)
        }
        "verify_signatures" => scenario.config.verify_signatures = value.as_bool()?,
        "state_backend" => {
            let name = value.as_str()?;
            scenario.config.state_backend = cycledger_ledger::StateBackend::from_name(name)
                .ok_or_else(|| format!("unknown state backend {name:?} (map or smt)"))?;
        }
        "message_driven" => scenario.config.message_driven = value.as_bool()?,
        "epoch_length" => scenario.config.epoch_length = value.as_u64()?,
        "joins_per_epoch" => scenario.config.joins_per_epoch = value.as_u32()?,
        "leaves_per_epoch" => scenario.config.leaves_per_epoch = value.as_u32()?,
        "malicious_fraction" => scenario.config.adversary.malicious_fraction = value.as_f64()?,
        "mix" => scenario.config.adversary.mix = mix_from_name(value.as_str()?)?,
        "invariants" => {
            let Value::Array(items) = value else {
                return Err("invariants must be an array of strings".into());
            };
            scenario.invariants = items
                .iter()
                .map(|v| Invariant::from_spec(v.as_str()?))
                .collect::<Result<Vec<_>, _>>()?;
        }
        other => return Err(format!("unknown scenario key {other:?}")),
    }
    Ok(())
}

fn fault_from_section(section: &Section) -> Result<FaultInjection, String> {
    let mut round: Option<u64> = None;
    let mut target: Option<FaultTarget> = None;
    let mut behavior: Option<Behavior> = None;
    for (key, value) in &section.entries {
        match key.as_str() {
            "round" => round = Some(value.as_u64()?),
            "target" => target = Some(FaultTarget::from_spec(value.as_str()?)?),
            "behavior" => behavior = Some(behavior_from_name(value.as_str()?)?),
            other => return Err(format!("unknown fault key {other:?}")),
        }
    }
    Ok(FaultInjection {
        round: round.ok_or("fault needs a round")?,
        target: target.ok_or("fault needs a target")?,
        behavior: behavior.ok_or("fault needs a behavior")?,
    })
}

fn net_fault_from_section(section: &Section) -> Result<NetFaultInjection, String> {
    let mut from_round: Option<u64> = None;
    let mut until_round: Option<u64> = None;
    let mut kind: Option<String> = None;
    let mut committee: Option<usize> = None;
    let mut count: Option<usize> = None;
    let mut target: Option<FaultTarget> = None;
    let mut delay_us: Option<u64> = None;
    let mut loss_ppm: Option<u32> = None;
    for (key, value) in &section.entries {
        match key.as_str() {
            "from_round" => from_round = Some(value.as_u64()?),
            "until_round" => until_round = Some(value.as_u64()?),
            "kind" => kind = Some(value.as_str()?.to_string()),
            "committee" => committee = Some(value.as_usize()?),
            "count" => count = Some(value.as_usize()?),
            "target" => target = Some(FaultTarget::from_spec(value.as_str()?)?),
            "delay_us" => delay_us = Some(value.as_u64()?),
            "loss_ppm" => loss_ppm = Some(value.as_u32()?),
            other => return Err(format!("unknown net-fault key {other:?}")),
        }
    }
    let kind = match kind.as_deref().ok_or("net fault needs a kind")? {
        "isolate-leader" => NetFaultKind::IsolateLeader {
            committee: committee.ok_or("isolate-leader needs a committee")?,
        },
        "isolate-commons" => NetFaultKind::IsolateCommons {
            committee: committee.ok_or("isolate-commons needs a committee")?,
            count: count.ok_or("isolate-commons needs a count")?,
        },
        "delay" => NetFaultKind::Delay {
            target: target.ok_or("delay needs a target")?,
            micros: delay_us.ok_or("delay needs delay_us")?,
        },
        "loss" => NetFaultKind::Loss {
            ppm: loss_ppm.ok_or("loss needs loss_ppm")?,
        },
        "crash-stop" => NetFaultKind::CrashStop {
            target: target.ok_or("crash-stop needs a target")?,
        },
        "isolate-joiners" => NetFaultKind::IsolateJoiners,
        other => return Err(format!("unknown net-fault kind {other:?}")),
    };
    Ok(NetFaultInjection {
        from_round: from_round.ok_or("net fault needs from_round")?,
        until_round: until_round.ok_or("net fault needs until_round")?,
        kind,
    })
}

fn traffic_from_section(section: &Section) -> Result<TrafficConfig, String> {
    let mut traffic = TrafficConfig::default();
    let mut rate_seen = false;
    for (key, value) in &section.entries {
        match key.as_str() {
            "rate_tps" => {
                traffic.rate_tps = value.as_f64()?;
                rate_seen = true;
            }
            "shape" => {
                let name = value.as_str()?;
                traffic.shape = ArrivalShape::from_name(name)
                    .ok_or_else(|| format!("unknown arrival shape {name:?}"))?;
            }
            "warmup_rounds" => traffic.warmup_rounds = value.as_u64()?,
            other => return Err(format!("unknown traffic key {other:?}")),
        }
    }
    if !rate_seen {
        return Err("traffic needs rate_tps".into());
    }
    Ok(traffic)
}

/// Parses scenarios from a TOML document. Every `[[scenario]]` starts from
/// the library defaults ([`ProtocolConfig::default`] with an empty fault and
/// invariant list), so a file only states what differs.
pub fn scenarios_from_toml(text: &str) -> Result<Vec<Scenario>, String> {
    let sections = parse_sections(text)?;
    let mut scenarios: Vec<Scenario> = Vec::new();
    for section in &sections {
        match section.header.as_str() {
            "scenario" => {
                let mut scenario = Scenario::new("", ProtocolConfig::default());
                for (key, value) in &section.entries {
                    apply_scenario_key(&mut scenario, key, value)
                        .map_err(|e| format!("line {}: {e}", section.line))?;
                }
                scenarios.push(scenario);
            }
            "scenario.faults" => {
                let scenario = scenarios.last_mut().ok_or_else(|| {
                    format!(
                        "line {}: [[scenario.faults]] before any [[scenario]]",
                        section.line
                    )
                })?;
                // Errors name the table's index within its scenario so a
                // matrix failure is attributable to one concrete table.
                let index = scenario.faults.len();
                let fault = fault_from_section(section).map_err(|e| {
                    format!(
                        "line {}: [[scenario.faults]] #{index} of scenario {:?}: {e}",
                        section.line, scenario.name
                    )
                })?;
                scenario.faults.push(fault);
            }
            "scenario.net_faults" => {
                let scenario = scenarios.last_mut().ok_or_else(|| {
                    format!(
                        "line {}: [[scenario.net_faults]] before any [[scenario]]",
                        section.line
                    )
                })?;
                let index = scenario.net_faults.len();
                let fault = net_fault_from_section(section).map_err(|e| {
                    format!(
                        "line {}: [[scenario.net_faults]] #{index} of scenario {:?}: {e}",
                        section.line, scenario.name
                    )
                })?;
                scenario.net_faults.push(fault);
            }
            "scenario.traffic" => {
                let scenario = scenarios.last_mut().ok_or_else(|| {
                    format!(
                        "line {}: [scenario.traffic] before any [[scenario]]",
                        section.line
                    )
                })?;
                if scenario.config.traffic.is_some() {
                    return Err(format!(
                        "line {}: duplicate [scenario.traffic] block in scenario {:?}",
                        section.line, scenario.name
                    ));
                }
                let traffic = traffic_from_section(section).map_err(|e| {
                    format!(
                        "line {}: [scenario.traffic] of scenario {:?}: {e}",
                        section.line, scenario.name
                    )
                })?;
                scenario.config.traffic = Some(traffic);
            }
            other => {
                return Err(format!(
                    "line {}: unknown section [[{other}]] (expected [[scenario]], \
                     [[scenario.faults]], [[scenario.net_faults]] or [scenario.traffic])",
                    section.line
                ))
            }
        }
    }
    for scenario in &scenarios {
        scenario.validate()?;
    }
    Ok(scenarios)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

/// Serializes scenarios to the canonical TOML form (every field, fixed
/// order; `parse(serialize(s))` reproduces `s` exactly).
pub fn scenarios_to_toml(scenarios: &[Scenario]) -> String {
    let mut out = String::new();
    for scenario in scenarios {
        let cfg: &ProtocolConfig = &scenario.config;
        let lat: &LatencyConfig = &cfg.latency;
        out.push_str("[[scenario]]\n");
        out.push_str(&format!("name = \"{}\"\n", escape(&scenario.name)));
        out.push_str(&format!(
            "description = \"{}\"\n",
            escape(&scenario.description)
        ));
        out.push_str(&format!(
            "paper_claim = \"{}\"\n",
            escape(&scenario.paper_claim)
        ));
        out.push_str(&format!("rounds = {}\n", scenario.rounds));
        out.push_str(&format!("smoke = {}\n", scenario.smoke));
        let workers: Vec<String> = scenario.workers.iter().map(|w| w.to_string()).collect();
        out.push_str(&format!("workers = [{}]\n", workers.join(", ")));
        out.push_str(&format!("seed = {}\n", cfg.seed));
        out.push_str(&format!("committees = {}\n", cfg.committees));
        out.push_str(&format!("committee_size = {}\n", cfg.committee_size));
        out.push_str(&format!("partial_set_size = {}\n", cfg.partial_set_size));
        out.push_str(&format!("referee_size = {}\n", cfg.referee_size));
        out.push_str(&format!("txs_per_round = {}\n", cfg.txs_per_round));
        out.push_str(&format!(
            "cross_shard_ratio = {:?}\n",
            cfg.cross_shard_ratio
        ));
        out.push_str(&format!("invalid_ratio = {:?}\n", cfg.invalid_ratio));
        out.push_str(&format!(
            "accounts_per_shard = {}\n",
            cfg.accounts_per_shard
        ));
        out.push_str(&format!("pow_difficulty = {}\n", cfg.pow_difficulty));
        out.push_str(&format!(
            "base_compute_capacity = {}\n",
            cfg.base_compute_capacity
        ));
        out.push_str(&format!(
            "compute_capacity_spread = {}\n",
            cfg.compute_capacity_spread
        ));
        out.push_str(&format!("leader_bonus = {:?}\n", cfg.leader_bonus));
        out.push_str(&format!("latency_delta_us = {}\n", lat.delta.as_micros()));
        out.push_str(&format!("latency_gamma_us = {}\n", lat.gamma.as_micros()));
        out.push_str(&format!(
            "latency_partial_us = {}\n",
            lat.partial_bound.as_micros()
        ));
        out.push_str(&format!("verify_signatures = {}\n", cfg.verify_signatures));
        out.push_str(&format!(
            "state_backend = \"{}\"\n",
            cfg.state_backend.name()
        ));
        out.push_str(&format!("message_driven = {}\n", cfg.message_driven));
        out.push_str(&format!("epoch_length = {}\n", cfg.epoch_length));
        out.push_str(&format!("joins_per_epoch = {}\n", cfg.joins_per_epoch));
        out.push_str(&format!("leaves_per_epoch = {}\n", cfg.leaves_per_epoch));
        out.push_str(&format!(
            "malicious_fraction = {:?}\n",
            cfg.adversary.malicious_fraction
        ));
        out.push_str(&format!("mix = \"{}\"\n", mix_name(cfg.adversary.mix)));
        let invariants: Vec<String> = scenario
            .invariants
            .iter()
            .map(|i| format!("\"{}\"", escape(&i.to_spec())))
            .collect();
        out.push_str(&format!("invariants = [{}]\n", invariants.join(", ")));
        if let Some(traffic) = &cfg.traffic {
            out.push_str("\n[scenario.traffic]\n");
            out.push_str(&format!("rate_tps = {:?}\n", traffic.rate_tps));
            out.push_str(&format!("shape = \"{}\"\n", traffic.shape.name()));
            out.push_str(&format!("warmup_rounds = {}\n", traffic.warmup_rounds));
        }
        for fault in &scenario.faults {
            out.push_str("\n[[scenario.faults]]\n");
            out.push_str(&format!("round = {}\n", fault.round));
            out.push_str(&format!("target = \"{}\"\n", fault.target.to_spec()));
            out.push_str(&format!(
                "behavior = \"{}\"\n",
                behavior_name(fault.behavior)
            ));
        }
        for fault in &scenario.net_faults {
            out.push_str("\n[[scenario.net_faults]]\n");
            out.push_str(&format!("from_round = {}\n", fault.from_round));
            out.push_str(&format!("until_round = {}\n", fault.until_round));
            out.push_str(&format!("kind = \"{}\"\n", fault.kind.name()));
            match fault.kind {
                NetFaultKind::IsolateLeader { committee } => {
                    out.push_str(&format!("committee = {committee}\n"));
                }
                NetFaultKind::IsolateCommons { committee, count } => {
                    out.push_str(&format!("committee = {committee}\n"));
                    out.push_str(&format!("count = {count}\n"));
                }
                NetFaultKind::Delay { target, micros } => {
                    out.push_str(&format!("target = \"{}\"\n", target.to_spec()));
                    out.push_str(&format!("delay_us = {micros}\n"));
                }
                NetFaultKind::Loss { ppm } => {
                    out.push_str(&format!("loss_ppm = {ppm}\n"));
                }
                NetFaultKind::CrashStop { target } => {
                    out.push_str(&format!("target = \"{}\"\n", target.to_spec()));
                }
                NetFaultKind::IsolateJoiners => {}
            }
        }
        out.push('\n');
    }
    out
}

/// Loads every `*.toml` file in a directory (sorted by file name for
/// deterministic ordering) and returns all scenarios found.
pub fn load_dir(dir: &std::path::Path) -> Result<Vec<Scenario>, String> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    let mut scenarios = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let parsed = scenarios_from_toml(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        scenarios.extend(parsed);
    }
    Ok(scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_parsing_covers_the_subset() {
        assert_eq!(parse_value("\"hi\"").unwrap(), Value::Str("hi".into()));
        assert_eq!(
            parse_value("\"a \\\"b\\\" \\\\ c\"").unwrap(),
            Value::Str("a \"b\" \\ c".into())
        );
        assert_eq!(parse_value("42").unwrap(), Value::Int(42));
        assert_eq!(parse_value("-3").unwrap(), Value::Int(-3));
        assert_eq!(parse_value("0.25").unwrap(), Value::Float(0.25));
        assert_eq!(parse_value("1e-3").unwrap(), Value::Float(0.001));
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(
            parse_value("[1, 2, 8]").unwrap(),
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(8)])
        );
        assert_eq!(
            parse_value("[\"a\", \"b\"]").unwrap(),
            Value::Array(vec![Value::Str("a".into()), Value::Str("b".into())])
        );
        assert!(parse_value("\"unterminated").is_err());
        assert!(parse_value("[1, 2").is_err());
        assert!(parse_value("nonsense words").is_err());
    }

    #[test]
    fn multi_line_arrays_with_trailing_commas_parse() {
        let text = r#"
[[scenario]]
name = "multi"
rounds = 1
workers = [1]
invariants = [
    "blocks-every-round",   # comments survive inside arrays
    "no-evictions",
]
"#;
        let scenarios = scenarios_from_toml(text).expect("parses");
        assert_eq!(scenarios[0].invariants.len(), 2);
        assert!(scenarios_from_toml("[[scenario]]\ninvariants = [\n\"x\"\n")
            .unwrap_err()
            .contains("unterminated"));
    }

    #[test]
    fn comments_respect_strings() {
        assert_eq!(strip_comment("a = 1 # note"), "a = 1 ");
        assert_eq!(strip_comment("a = \"x # y\""), "a = \"x # y\"");
    }

    #[test]
    fn a_minimal_scenario_file_parses() {
        let text = r#"
# A handwritten override file.
[[scenario]]
name = "custom"
description = "hand-written"
paper_claim = "Claim 3"
rounds = 2
smoke = true
workers = [1, 2]
seed = 7
committees = 2
committee_size = 8
partial_set_size = 2
referee_size = 5
txs_per_round = 30
accounts_per_shard = 24
pow_difficulty = 2
invariants = ["blocks-every-round", "min-evictions:1"]

[[scenario.faults]]
round = 0
target = "leader:1"
behavior = "silent-leader"
"#;
        let scenarios = scenarios_from_toml(text).expect("parses");
        assert_eq!(scenarios.len(), 1);
        let s = &scenarios[0];
        assert_eq!(s.name, "custom");
        assert_eq!(s.rounds, 2);
        assert_eq!(s.config.committees, 2);
        assert_eq!(s.faults.len(), 1);
        assert_eq!(s.faults[0].target, FaultTarget::Leader(1));
        assert_eq!(s.invariants.len(), 2);
        // Unstated keys keep the library defaults.
        assert_eq!(s.config.leader_bonus, 0.1);
    }

    #[test]
    fn net_fault_sections_parse_and_reject_typos() {
        let text = r#"
[[scenario]]
name = "driven"
rounds = 3
workers = [1]
committees = 2
committee_size = 8
partial_set_size = 2
referee_size = 5
accounts_per_shard = 24
message_driven = true
invariants = ["min-quorum-timeouts:1", "min-acceptance-from:2:0.9", "no-double-commit"]

[[scenario.net_faults]]
from_round = 0
until_round = 2
kind = "isolate-commons"
committee = 0
count = 4

[[scenario.net_faults]]
from_round = 1
until_round = 2
kind = "delay"
target = "partial:0:0"
delay_us = 600000
"#;
        let scenarios = scenarios_from_toml(text).expect("parses");
        let s = &scenarios[0];
        assert!(s.config.message_driven);
        assert_eq!(s.net_faults.len(), 2);
        assert_eq!(
            s.net_faults[0].kind,
            NetFaultKind::IsolateCommons {
                committee: 0,
                count: 4
            }
        );
        assert_eq!(
            s.net_faults[1].kind,
            NetFaultKind::Delay {
                target: FaultTarget::PartialSetMember {
                    committee: 0,
                    index: 0
                },
                micros: 600_000
            }
        );
        assert_eq!(s.invariants.len(), 3);

        assert!(scenarios_from_toml(
            "[[scenario]]\nname = \"x\"\n[[scenario.net_faults]]\nkidn = \"loss\"\n"
        )
        .unwrap_err()
        .contains("unknown net-fault key"));
        assert!(scenarios_from_toml(
            "[[scenario]]\nname = \"x\"\n[[scenario.net_faults]]\nfrom_round = 0\nuntil_round = 1\nkind = \"flood\"\n"
        )
        .unwrap_err()
        .contains("unknown net-fault kind"));
    }

    #[test]
    fn malformed_fault_tables_are_attributed_by_index() {
        // The second [[scenario.net_faults]] table is the malformed one; the
        // error must say so (index + scenario name + line), not just name
        // the offending key.
        let text = r#"
[[scenario]]
name = "attributable"
rounds = 3
workers = [1]
message_driven = true
invariants = ["no-double-commit"]

[[scenario.net_faults]]
from_round = 0
until_round = 1
kind = "loss"
loss_ppm = 1000

[[scenario.net_faults]]
from_round = 1
until_round = 2
kind = "delay"
target = "leader:0"
"#;
        let err = scenarios_from_toml(text).unwrap_err();
        assert!(
            err.contains("[[scenario.net_faults]] #1"),
            "error lacks the table index: {err}"
        );
        assert!(
            err.contains("\"attributable\""),
            "error lacks the scenario name: {err}"
        );
        assert!(err.contains("line 15"), "error lacks the line: {err}");
        assert!(err.contains("delay needs delay_us"), "wrong cause: {err}");

        let classic = "[[scenario]]\nname = \"x\"\n\
             [[scenario.faults]]\nround = 0\ntarget = \"leader:0\"\nbehavior = \"silent-leader\"\n\
             [[scenario.faults]]\nround = 1\ntarget = \"leader:0\"\n";
        let err = scenarios_from_toml(classic).unwrap_err();
        assert!(
            err.contains("[[scenario.faults]] #1") && err.contains("fault needs a behavior"),
            "classic fault table not attributed: {err}"
        );
    }

    #[test]
    fn epoch_keys_and_new_net_fault_kinds_round_trip() {
        let text = r#"
[[scenario]]
name = "churny"
rounds = 6
workers = [1]
message_driven = true
epoch_length = 2
joins_per_epoch = 2
leaves_per_epoch = 1
invariants = ["min-epoch-transitions:3", "no-syncing-votes", "min-synced:4"]

[[scenario.net_faults]]
from_round = 1
until_round = 4
kind = "isolate-joiners"

[[scenario.net_faults]]
from_round = 0
until_round = 2
kind = "crash-stop"
target = "node:3"
"#;
        let scenarios = scenarios_from_toml(text).expect("parses");
        let s = &scenarios[0];
        assert_eq!(s.config.epoch_length, 2);
        assert_eq!(s.config.joins_per_epoch, 2);
        assert_eq!(s.config.leaves_per_epoch, 1);
        assert_eq!(s.net_faults[0].kind, NetFaultKind::IsolateJoiners);
        assert_eq!(
            s.net_faults[1].kind,
            NetFaultKind::CrashStop {
                target: FaultTarget::Node(3)
            }
        );
        let serialized = scenarios_to_toml(&scenarios);
        let reparsed = scenarios_from_toml(&serialized).expect("round-trips");
        assert_eq!(reparsed[0].net_faults, s.net_faults);
        assert_eq!(reparsed[0].config.epoch_length, 2);
        assert_eq!(serialized, scenarios_to_toml(&reparsed));
    }

    #[test]
    fn traffic_blocks_parse_and_round_trip() {
        let text = r#"
[[scenario]]
name = "open-loop"
rounds = 6
workers = [1]
committees = 2
committee_size = 8
partial_set_size = 2
referee_size = 5
txs_per_round = 40
accounts_per_shard = 24
pow_difficulty = 2
invariants = ["blocks-every-round", "max-p99-latency:24.0", "min-sustained-tps:15.0"]

[scenario.traffic]
rate_tps = 20.0
shape = "poisson"
warmup_rounds = 1
"#;
        let scenarios = scenarios_from_toml(text).expect("parses");
        let s = &scenarios[0];
        let traffic = s.config.traffic.expect("traffic block applied");
        assert_eq!(traffic.rate_tps, 20.0);
        assert_eq!(traffic.shape, ArrivalShape::Poisson);
        assert_eq!(traffic.warmup_rounds, 1);
        assert_eq!(
            s.invariants[1],
            Invariant::MaxP99Latency(24.0),
            "SLO invariants parse from the array"
        );
        assert_eq!(s.invariants[2], Invariant::MinSustainedTps(15.0));
        let serialized = scenarios_to_toml(&scenarios);
        let reparsed = scenarios_from_toml(&serialized).expect("round-trips");
        assert_eq!(reparsed[0].config.traffic, s.config.traffic);
        assert_eq!(serialized, scenarios_to_toml(&reparsed));

        // Typos and structural mistakes fail loudly.
        assert!(scenarios_from_toml(
            "[[scenario]]\nname = \"x\"\n[scenario.traffic]\nrate = 5.0\n"
        )
        .unwrap_err()
        .contains("unknown traffic key"));
        assert!(scenarios_from_toml(
            "[[scenario]]\nname = \"x\"\n[scenario.traffic]\nshape = \"constant\"\n"
        )
        .unwrap_err()
        .contains("needs rate_tps"));
        assert!(scenarios_from_toml(
            "[[scenario]]\nname = \"x\"\n[scenario.traffic]\nrate_tps = 5.0\nshape = \"bursty\"\n"
        )
        .unwrap_err()
        .contains("unknown arrival shape"));
        assert!(scenarios_from_toml("[scenario.traffic]\nrate_tps = 5.0\n")
            .unwrap_err()
            .contains("before any"));
    }

    #[test]
    fn state_backend_key_parses_and_round_trips() {
        let text = r#"
[[scenario]]
name = "authenticated"
rounds = 2
workers = [1]
committees = 2
committee_size = 8
partial_set_size = 2
referee_size = 5
accounts_per_shard = 24
state_backend = "smt"
invariants = ["blocks-every-round", "state-root", "light-client-proof:8"]
"#;
        let scenarios = scenarios_from_toml(text).expect("parses");
        let s = &scenarios[0];
        assert_eq!(s.config.state_backend, cycledger_ledger::StateBackend::Smt);
        assert_eq!(s.invariants[1], Invariant::StateRootsEveryRound);
        assert_eq!(s.invariants[2], Invariant::LightClientProofsVerify(8));
        let serialized = scenarios_to_toml(&scenarios);
        assert!(serialized.contains("state_backend = \"smt\"\n"));
        let reparsed = scenarios_from_toml(&serialized).expect("round-trips");
        assert_eq!(
            reparsed[0].config.state_backend,
            cycledger_ledger::StateBackend::Smt
        );
        assert_eq!(serialized, scenarios_to_toml(&reparsed));

        // Unknown backends fail loudly; proof invariants without the smt
        // backend are rejected by validation.
        assert!(
            scenarios_from_toml("[[scenario]]\nname = \"x\"\nstate_backend = \"btree\"\n")
                .unwrap_err()
                .contains("unknown state backend")
        );
        assert!(scenarios_from_toml(
            "[[scenario]]\nname = \"x\"\nrounds = 1\nworkers = [1]\ninvariants = [\"state-root\"]\n"
        )
        .unwrap_err()
        .contains("state_backend"));
    }

    #[test]
    fn unknown_keys_and_sections_are_rejected() {
        assert!(scenarios_from_toml("[[scenario]]\nnmae = \"typo\"\n")
            .unwrap_err()
            .contains("unknown scenario key"));
        assert!(scenarios_from_toml("[[experiment]]\n")
            .unwrap_err()
            .contains("unknown section"));
        assert!(scenarios_from_toml("stray = 1\n")
            .unwrap_err()
            .contains("outside any"));
        assert!(scenarios_from_toml("[[scenario.faults]]\nround = 0\n")
            .unwrap_err()
            .contains("before any"));
    }
}
