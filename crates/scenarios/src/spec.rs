//! The declarative [`Scenario`] specification.
//!
//! A scenario names one complete simulation setup — protocol parameters,
//! adversary mix, latency profile, workload shape, targeted fault
//! injections — plus the list of machine-checkable [`Invariant`]s the run
//! must satisfy. Scenarios are plain data: they can be built in code (the
//! [`crate::registry`] builtins), loaded from TOML files
//! ([`crate::toml_cfg`]), and executed by the [`crate::runner`].
//!
//! [`Invariant`]: crate::invariant::Invariant

use cycledger_ledger::StateBackend;
use cycledger_net::latency::LatencyConfig;
use cycledger_protocol::adversary::{AdversaryConfig, Behavior, BehaviorMix};
use cycledger_protocol::config::ProtocolConfig;

use crate::invariant::Invariant;

/// Who a fault injection targets, resolved against the round assignment in
/// force when the injection fires (targets are positional, so the same spec
/// is reproducible for any seed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// The current leader of committee `k`.
    Leader(usize),
    /// The `i`-th partial-set member of committee `k`.
    PartialSetMember {
        /// Committee index.
        committee: usize,
        /// Index within the partial set.
        index: usize,
    },
    /// A node by global id.
    Node(u32),
    /// Every current committee leader.
    AllLeaders,
    /// Every current referee-committee member.
    AllReferees,
}

impl FaultTarget {
    /// Canonical string form (`leader:0`, `partial:1:0`, `node:12`,
    /// `all-leaders`, `all-referees`) used by the TOML schema.
    pub fn to_spec(self) -> String {
        match self {
            FaultTarget::Leader(k) => format!("leader:{k}"),
            FaultTarget::PartialSetMember { committee, index } => {
                format!("partial:{committee}:{index}")
            }
            FaultTarget::Node(id) => format!("node:{id}"),
            FaultTarget::AllLeaders => "all-leaders".into(),
            FaultTarget::AllReferees => "all-referees".into(),
        }
    }

    /// Parses the canonical string form.
    pub fn from_spec(s: &str) -> Result<FaultTarget, String> {
        let parts: Vec<&str> = s.split(':').collect();
        match parts.as_slice() {
            ["all-leaders"] => Ok(FaultTarget::AllLeaders),
            ["all-referees"] => Ok(FaultTarget::AllReferees),
            ["leader", k] => k
                .parse()
                .map(FaultTarget::Leader)
                .map_err(|_| format!("bad committee index in target {s:?}")),
            ["node", id] => id
                .parse()
                .map(FaultTarget::Node)
                .map_err(|_| format!("bad node id in target {s:?}")),
            ["partial", k, i] => {
                let committee = k
                    .parse()
                    .map_err(|_| format!("bad committee index in target {s:?}"))?;
                let index = i
                    .parse()
                    .map_err(|_| format!("bad partial-set index in target {s:?}"))?;
                Ok(FaultTarget::PartialSetMember { committee, index })
            }
            _ => Err(format!("unknown fault target {s:?}")),
        }
    }
}

/// One targeted behaviour flip, applied between rounds (corruption takes a
/// round to take effect in the paper's mildly adaptive model, so injections
/// never fire mid-round).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultInjection {
    /// The round before which the flip is applied (0 = before the first).
    pub round: u64,
    /// Who is flipped.
    pub target: FaultTarget,
    /// The behaviour assigned.
    pub behavior: Behavior,
}

/// What a network-fault injection does while active. Requires the scenario's
/// configuration to enable the message-driven data plane — the synchronous
/// path never consults the fault plan, so a net fault there would silently
/// do nothing (validation rejects that).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFaultKind {
    /// Sever the current leader of committee `k` from everyone (the node is
    /// re-resolved each round, so it follows recoveries and re-sortition).
    IsolateLeader {
        /// Committee index.
        committee: usize,
    },
    /// Sever the first `count` common (non-leader, non-partial-set) members
    /// of committee `k` from everyone.
    IsolateCommons {
        /// Committee index.
        committee: usize,
        /// Number of common members severed.
        count: usize,
    },
    /// Add a fixed extra delay to every message sent or received by the
    /// resolved target nodes (a delay attack: no message is lost, they just
    /// miss protocol deadlines).
    Delay {
        /// Positional target, re-resolved each round.
        target: FaultTarget,
        /// Extra delay in microseconds of virtual time.
        micros: u64,
    },
    /// Drop every message with the given probability (deterministically
    /// sampled), in parts per million.
    Loss {
        /// Drop probability in parts per million (1_000_000 = everything).
        ppm: u32,
    },
    /// Crash-stop the resolved target nodes for every active round: the
    /// nodes neither send nor receive anything while the injection holds
    /// (they restart when the window heals).
    CrashStop {
        /// Positional target, re-resolved each round.
        target: FaultTarget,
    },
    /// Sever every validator admitted after the initial registry (ids
    /// `total_nodes()` and up, including joiners that do not exist yet) from
    /// everyone. This is the handover attack: an epoch boundary's state-sync
    /// sessions run under the boundary round's fault plan, so isolating the
    /// future joiner ids keeps new members `Syncing` (abstaining) until the
    /// window heals. Requires epoch churn (`joins_per_epoch > 0`).
    IsolateJoiners,
}

impl NetFaultKind {
    /// Canonical kebab-case kind name (TOML schema + reports).
    pub fn name(&self) -> &'static str {
        match self {
            NetFaultKind::IsolateLeader { .. } => "isolate-leader",
            NetFaultKind::IsolateCommons { .. } => "isolate-commons",
            NetFaultKind::Delay { .. } => "delay",
            NetFaultKind::Loss { .. } => "loss",
            NetFaultKind::CrashStop { .. } => "crash-stop",
            NetFaultKind::IsolateJoiners => "isolate-joiners",
        }
    }
}

/// One scheduled network fault: active from `from_round` (inclusive) until
/// `until_round` (exclusive — the heal point). Partition/heal schedules,
/// delay attacks and loss windows are all expressed this way; the runner
/// re-resolves positional targets against the round's assignment and
/// installs the combined [`cycledger_net::faults::FaultPlan`] before each
/// round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetFaultInjection {
    /// First round the fault is active (inclusive).
    pub from_round: u64,
    /// Heal round (exclusive); rounds from here on run clean again.
    pub until_round: u64,
    /// What the fault does while active.
    pub kind: NetFaultKind,
}

impl NetFaultInjection {
    /// True while `round` falls inside the injection's window.
    pub fn active_at(&self, round: u64) -> bool {
        (self.from_round..self.until_round).contains(&round)
    }
}

/// Canonical kebab-case name of a behaviour (TOML schema + reports).
pub fn behavior_name(behavior: Behavior) -> &'static str {
    match behavior {
        Behavior::Honest => "honest",
        Behavior::SilentLeader => "silent-leader",
        Behavior::EquivocatingLeader => "equivocating-leader",
        Behavior::MismatchedCommitment => "mismatched-commitment",
        Behavior::CensoringLeader => "censoring-leader",
        Behavior::WrongVoter => "wrong-voter",
        Behavior::LazyVoter => "lazy-voter",
        Behavior::FalseAccuser => "false-accuser",
    }
}

/// Parses a kebab-case behaviour name.
pub fn behavior_from_name(name: &str) -> Result<Behavior, String> {
    Ok(match name {
        "honest" => Behavior::Honest,
        "silent-leader" => Behavior::SilentLeader,
        "equivocating-leader" => Behavior::EquivocatingLeader,
        "mismatched-commitment" => Behavior::MismatchedCommitment,
        "censoring-leader" => Behavior::CensoringLeader,
        "wrong-voter" => Behavior::WrongVoter,
        "lazy-voter" => Behavior::LazyVoter,
        "false-accuser" => Behavior::FalseAccuser,
        other => return Err(format!("unknown behaviour {other:?}")),
    })
}

/// Canonical string form of a behaviour mix (`honest`, `uniform`, or a
/// behaviour name for a fixed mix).
pub fn mix_name(mix: BehaviorMix) -> String {
    match mix {
        BehaviorMix::Uniform => "uniform".into(),
        BehaviorMix::Fixed(Behavior::Honest) => "honest".into(),
        BehaviorMix::Fixed(b) => behavior_name(b).into(),
    }
}

/// Parses the canonical mix form.
pub fn mix_from_name(name: &str) -> Result<BehaviorMix, String> {
    if name == "uniform" {
        return Ok(BehaviorMix::Uniform);
    }
    behavior_from_name(name).map(BehaviorMix::Fixed)
}

/// One named, reproducible, invariant-gated simulation configuration.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Unique name (also the report / golden file stem).
    pub name: String,
    /// Human-readable description of what the scenario exercises.
    pub description: String,
    /// The paper claim the scenario pins down (e.g. "Claim 3", "Lemma 6").
    pub paper_claim: String,
    /// Rounds to simulate.
    pub rounds: usize,
    /// Whether the scenario is part of the fast `smoke` matrix CI runs.
    pub smoke: bool,
    /// Worker counts the runner cross-checks digests over (first entry is the
    /// baseline whose summary feeds the report).
    pub workers: Vec<usize>,
    /// The full protocol configuration (adversary, latency, workload shape).
    pub config: ProtocolConfig,
    /// Targeted behaviour flips applied between rounds.
    pub faults: Vec<FaultInjection>,
    /// Scheduled network faults (partitions, delay attacks, loss windows);
    /// requires `config.message_driven`.
    pub net_faults: Vec<NetFaultInjection>,
    /// The machine-checkable claims the run must satisfy.
    pub invariants: Vec<Invariant>,
}

impl Scenario {
    /// A scenario skeleton around a configuration, with the default worker
    /// matrix `[1, 2, 8]` and three rounds.
    pub fn new(name: &str, config: ProtocolConfig) -> Scenario {
        Scenario {
            name: name.into(),
            description: String::new(),
            paper_claim: String::new(),
            rounds: 3,
            smoke: false,
            workers: vec![1, 2, 8],
            config,
            faults: Vec::new(),
            net_faults: Vec::new(),
            invariants: Vec::new(),
        }
    }

    /// Validates the scenario (configuration included).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name must not be empty".into());
        }
        if self
            .name
            .chars()
            .any(|c| !c.is_ascii_alphanumeric() && c != '-' && c != '_')
        {
            return Err(format!(
                "scenario name {:?} must be alphanumeric/dash/underscore (it becomes a file name)",
                self.name
            ));
        }
        if self.rounds == 0 {
            return Err(format!(
                "scenario {:?} must run at least one round",
                self.name
            ));
        }
        if self.workers.is_empty() {
            return Err(format!(
                "scenario {:?} needs at least one worker count",
                self.name
            ));
        }
        if self.invariants.is_empty() {
            return Err(format!(
                "scenario {:?} must assert at least one invariant",
                self.name
            ));
        }
        for fault in &self.faults {
            if fault.round >= self.rounds as u64 {
                return Err(format!(
                    "scenario {:?}: fault at round {} beyond the {}-round run",
                    self.name, fault.round, self.rounds
                ));
            }
            match fault.target {
                FaultTarget::Leader(k) if k >= self.config.committees => {
                    return Err(format!(
                        "scenario {:?}: fault targets committee {k} of {}",
                        self.name, self.config.committees
                    ));
                }
                FaultTarget::PartialSetMember { committee, index } => {
                    if committee >= self.config.committees {
                        return Err(format!(
                            "scenario {:?}: fault targets committee {committee} of {}",
                            self.name, self.config.committees
                        ));
                    }
                    if index >= self.config.partial_set_size {
                        return Err(format!(
                            "scenario {:?}: fault targets partial-set slot {index} of {}",
                            self.name, self.config.partial_set_size
                        ));
                    }
                }
                _ => {}
            }
        }
        if !self.net_faults.is_empty() && !self.config.message_driven {
            return Err(format!(
                "scenario {:?} schedules network faults but message_driven is off \
                 (the synchronous path never consults the fault plan)",
                self.name
            ));
        }
        for nf in &self.net_faults {
            if nf.from_round >= nf.until_round {
                return Err(format!(
                    "scenario {:?}: net fault window [{}, {}) is empty",
                    self.name, nf.from_round, nf.until_round
                ));
            }
            if nf.from_round >= self.rounds as u64 {
                return Err(format!(
                    "scenario {:?}: net fault starts at round {} beyond the {}-round run",
                    self.name, nf.from_round, self.rounds
                ));
            }
            match nf.kind {
                NetFaultKind::IsolateLeader { committee }
                | NetFaultKind::IsolateCommons { committee, .. }
                    if committee >= self.config.committees =>
                {
                    return Err(format!(
                        "scenario {:?}: net fault targets committee {committee} of {}",
                        self.name, self.config.committees
                    ));
                }
                NetFaultKind::IsolateCommons { count: 0, .. } => {
                    return Err(format!(
                        "scenario {:?}: isolate-commons must sever at least one member",
                        self.name
                    ));
                }
                NetFaultKind::Delay { micros: 0, .. } => {
                    return Err(format!(
                        "scenario {:?}: a delay fault needs a nonzero delay",
                        self.name
                    ));
                }
                NetFaultKind::Loss { ppm } if ppm == 0 || ppm > 1_000_000 => {
                    return Err(format!(
                        "scenario {:?}: loss ppm must lie in [1, 1_000_000]",
                        self.name
                    ));
                }
                NetFaultKind::CrashStop { target } => match target {
                    FaultTarget::Leader(k) if k >= self.config.committees => {
                        return Err(format!(
                            "scenario {:?}: crash-stop targets committee {k} of {}",
                            self.name, self.config.committees
                        ));
                    }
                    FaultTarget::PartialSetMember { committee, index } => {
                        if committee >= self.config.committees {
                            return Err(format!(
                                "scenario {:?}: crash-stop targets committee {committee} of {}",
                                self.name, self.config.committees
                            ));
                        }
                        if index >= self.config.partial_set_size {
                            return Err(format!(
                                "scenario {:?}: crash-stop targets partial-set slot {index} of {}",
                                self.name, self.config.partial_set_size
                            ));
                        }
                    }
                    _ => {}
                },
                NetFaultKind::IsolateJoiners if self.config.joins_per_epoch == 0 => {
                    return Err(format!(
                        "scenario {:?}: isolate-joiners needs epoch churn \
                         (joins_per_epoch > 0), or there is nobody to isolate",
                        self.name
                    ));
                }
                _ => {}
            }
        }
        if self.config.traffic.is_none() {
            for inv in &self.invariants {
                if matches!(
                    inv,
                    Invariant::MaxP99Latency(_) | Invariant::MinSustainedTps(_)
                ) {
                    return Err(format!(
                        "scenario {:?} asserts the traffic SLO invariant {} but has no \
                         [scenario.traffic] block (a closed-loop run has no latency \
                         distribution to gate)",
                        self.name,
                        inv.to_spec()
                    ));
                }
            }
        }
        if self.config.state_backend != StateBackend::Smt {
            for inv in &self.invariants {
                if matches!(
                    inv,
                    Invariant::StateRootsEveryRound | Invariant::LightClientProofsVerify(_)
                ) {
                    return Err(format!(
                        "scenario {:?} asserts the authenticated-state invariant {} but \
                         state_backend is \"map\" (only the smt backend publishes state \
                         roots to check)",
                        self.name,
                        inv.to_spec()
                    ));
                }
            }
        }
        self.config
            .validate()
            .map_err(|e| format!("scenario {:?}: {e}", self.name))
    }
}

/// A named latency profile for the TOML schema and the builtins; custom
/// `latency_*_us` keys override the profile field-by-field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyProfile {
    /// The default Δ=50ms / Γ=200ms / 1s profile.
    Default,
    /// A tight datacenter profile (Δ=5ms / Γ=20ms / 100ms).
    Lan,
    /// A stretched wide-area profile (Δ=150ms / Γ=600ms / 3s).
    Wan,
}

impl LatencyProfile {
    /// The concrete latency configuration of the profile.
    pub fn config(self) -> LatencyConfig {
        match self {
            LatencyProfile::Default => LatencyConfig::default(),
            LatencyProfile::Lan => LatencyConfig::lan(),
            LatencyProfile::Wan => LatencyConfig::wan(),
        }
    }
}

/// Builds an [`AdversaryConfig`] from the TOML-facing pair.
pub fn adversary_from_parts(fraction: f64, mix: BehaviorMix) -> AdversaryConfig {
    AdversaryConfig {
        malicious_fraction: fraction,
        mix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_target_specs_round_trip() {
        let targets = [
            FaultTarget::Leader(3),
            FaultTarget::PartialSetMember {
                committee: 1,
                index: 2,
            },
            FaultTarget::Node(17),
            FaultTarget::AllLeaders,
            FaultTarget::AllReferees,
        ];
        for t in targets {
            assert_eq!(FaultTarget::from_spec(&t.to_spec()), Ok(t));
        }
        assert!(FaultTarget::from_spec("chief:0").is_err());
        assert!(FaultTarget::from_spec("leader:x").is_err());
    }

    #[test]
    fn behavior_names_round_trip() {
        for b in [
            Behavior::Honest,
            Behavior::SilentLeader,
            Behavior::EquivocatingLeader,
            Behavior::MismatchedCommitment,
            Behavior::CensoringLeader,
            Behavior::WrongVoter,
            Behavior::LazyVoter,
            Behavior::FalseAccuser,
        ] {
            assert_eq!(behavior_from_name(behavior_name(b)), Ok(b));
        }
        assert!(behavior_from_name("sleepy-leader").is_err());
        assert_eq!(mix_from_name("uniform"), Ok(BehaviorMix::Uniform));
        assert_eq!(
            mix_from_name(&mix_name(BehaviorMix::Fixed(Behavior::LazyVoter))),
            Ok(BehaviorMix::Fixed(Behavior::LazyVoter))
        );
    }

    #[test]
    fn validation_rejects_bad_scenarios() {
        let base = crate::registry::builtin_scenarios();
        let good = &base[0];
        assert_eq!(good.validate(), Ok(()));

        let mut unnamed = good.clone();
        unnamed.name.clear();
        assert!(unnamed.validate().is_err());

        let mut weird_name = good.clone();
        weird_name.name = "has/slash".into();
        assert!(weird_name.validate().is_err());

        let mut no_rounds = good.clone();
        no_rounds.rounds = 0;
        assert!(no_rounds.validate().is_err());

        let mut no_invariants = good.clone();
        no_invariants.invariants.clear();
        assert!(no_invariants.validate().is_err());

        let mut late_fault = good.clone();
        late_fault.faults.push(FaultInjection {
            round: 99,
            target: FaultTarget::Leader(0),
            behavior: Behavior::SilentLeader,
        });
        assert!(late_fault.validate().is_err());

        let mut bad_committee = good.clone();
        bad_committee.faults.push(FaultInjection {
            round: 0,
            target: FaultTarget::Leader(99),
            behavior: Behavior::SilentLeader,
        });
        assert!(bad_committee.validate().is_err());

        // Traffic SLO invariants on a closed-loop scenario gate nothing.
        let mut slo_without_traffic = good.clone();
        slo_without_traffic.config.traffic = None;
        slo_without_traffic
            .invariants
            .push(Invariant::MaxP99Latency(24.0));
        assert!(slo_without_traffic
            .validate()
            .unwrap_err()
            .contains("traffic"));

        // Authenticated-state invariants on the map backend check nothing.
        for inv in [
            Invariant::StateRootsEveryRound,
            Invariant::LightClientProofsVerify(4),
        ] {
            let mut rootless = good.clone();
            rootless.config.state_backend = StateBackend::Map;
            rootless.invariants.push(inv);
            assert!(rootless.validate().unwrap_err().contains("state_backend"));
        }
    }

    #[test]
    fn net_fault_validation() {
        let base = crate::registry::builtin_scenarios()
            .into_iter()
            .find(|s| !s.net_faults.is_empty())
            .expect("a builtin net-fault scenario exists");
        assert_eq!(base.validate(), Ok(()));

        // Net faults without the message-driven plane are rejected (they
        // would silently do nothing).
        let mut sync = base.clone();
        sync.config.message_driven = false;
        assert!(sync.validate().unwrap_err().contains("message_driven"));

        let mut empty_window = base.clone();
        empty_window.net_faults.push(NetFaultInjection {
            from_round: 2,
            until_round: 2,
            kind: NetFaultKind::Loss { ppm: 1 },
        });
        assert!(empty_window.validate().is_err());

        let mut late = base.clone();
        late.net_faults.push(NetFaultInjection {
            from_round: 99,
            until_round: 100,
            kind: NetFaultKind::Loss { ppm: 1 },
        });
        assert!(late.validate().is_err());

        let mut bad_committee = base.clone();
        bad_committee.net_faults.push(NetFaultInjection {
            from_round: 0,
            until_round: 1,
            kind: NetFaultKind::IsolateLeader { committee: 99 },
        });
        assert!(bad_committee.validate().is_err());

        let mut zero_loss = base.clone();
        zero_loss.net_faults.push(NetFaultInjection {
            from_round: 0,
            until_round: 1,
            kind: NetFaultKind::Loss { ppm: 0 },
        });
        assert!(zero_loss.validate().is_err());

        let mut zero_delay = base.clone();
        zero_delay.net_faults.push(NetFaultInjection {
            from_round: 0,
            until_round: 1,
            kind: NetFaultKind::Delay {
                target: FaultTarget::Leader(0),
                micros: 0,
            },
        });
        assert!(zero_delay.validate().is_err());

        let mut crash_bad_committee = base.clone();
        crash_bad_committee.net_faults.push(NetFaultInjection {
            from_round: 0,
            until_round: 1,
            kind: NetFaultKind::CrashStop {
                target: FaultTarget::Leader(99),
            },
        });
        assert!(crash_bad_committee.validate().is_err());

        // isolate-joiners without epoch churn has nobody to isolate.
        let mut no_churn = base.clone();
        no_churn.config.joins_per_epoch = 0;
        no_churn.net_faults.push(NetFaultInjection {
            from_round: 0,
            until_round: 1,
            kind: NetFaultKind::IsolateJoiners,
        });
        assert!(no_churn.validate().unwrap_err().contains("isolate-joiners"));
    }

    #[test]
    fn net_fault_windows() {
        let nf = NetFaultInjection {
            from_round: 1,
            until_round: 3,
            kind: NetFaultKind::IsolateCommons {
                committee: 0,
                count: 2,
            },
        };
        assert!(!nf.active_at(0));
        assert!(nf.active_at(1));
        assert!(nf.active_at(2));
        assert!(!nf.active_at(3), "the heal round runs clean");
        assert_eq!(nf.kind.name(), "isolate-commons");
    }

    #[test]
    fn latency_profiles_are_ordered() {
        for profile in [
            LatencyProfile::Lan,
            LatencyProfile::Default,
            LatencyProfile::Wan,
        ] {
            let cfg = profile.config();
            assert!(cfg.delta < cfg.gamma);
            assert!(cfg.gamma < cfg.partial_bound);
        }
    }
}
