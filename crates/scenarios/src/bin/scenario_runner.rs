//! `scenario-runner` — executes the scenario matrix, emits canonical JSON
//! reports, and gates them against committed golden files.
//!
//! ```text
//! scenario-runner [--matrix smoke|full] [--scenario NAME ...] [--list]
//!                 [--scenario-dir DIR] [--out DIR] [--golden DIR]
//!                 [--bless] [--jobs N] [--state-backend map|smt]
//! ```
//!
//! Exit status is non-zero when any invariant is violated, any report
//! drifts from its golden file, or a golden file is missing (run with
//! `--bless` to write the current reports as the new goldens).
//!
//! `--state-backend` overrides every selected scenario's UTXO store (the CI
//! state-matrix job runs the smoke matrix under `smt`). Because the smt
//! backend extends each report with per-round state roots, an overridden
//! run is gated on its invariants only — golden comparison is skipped, as
//! the committed goldens pin the scenarios' *declared* backends.

use std::path::PathBuf;
use std::process::ExitCode;

use cycledger_ledger::StateBackend;
use cycledger_scenarios::registry::builtin_scenarios;
use cycledger_scenarios::report::render_report;
use cycledger_scenarios::runner::run_matrix;
use cycledger_scenarios::spec::Scenario;
use cycledger_scenarios::toml_cfg;

struct Options {
    matrix: String,
    names: Vec<String>,
    list: bool,
    scenario_dir: Option<PathBuf>,
    out_dir: PathBuf,
    golden_dir: PathBuf,
    bless: bool,
    jobs: usize,
    state_backend: Option<StateBackend>,
}

impl Options {
    fn parse() -> Result<Options, String> {
        let mut options = Options {
            matrix: "full".into(),
            names: Vec::new(),
            list: false,
            scenario_dir: None,
            out_dir: PathBuf::from("scenarios/reports"),
            golden_dir: PathBuf::from("scenarios/golden"),
            bless: false,
            jobs: 0,
            state_backend: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value_of =
                |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
            match arg.as_str() {
                "--matrix" => {
                    options.matrix = value_of("--matrix")?;
                    if options.matrix != "smoke" && options.matrix != "full" {
                        return Err(format!(
                            "--matrix must be `smoke` or `full`, got {:?}",
                            options.matrix
                        ));
                    }
                }
                "--scenario" => options.names.push(value_of("--scenario")?),
                "--list" => options.list = true,
                "--scenario-dir" => {
                    options.scenario_dir = Some(PathBuf::from(value_of("--scenario-dir")?))
                }
                "--out" => options.out_dir = PathBuf::from(value_of("--out")?),
                "--golden" => options.golden_dir = PathBuf::from(value_of("--golden")?),
                "--bless" => options.bless = true,
                "--jobs" => {
                    options.jobs = value_of("--jobs")?
                        .parse()
                        .map_err(|_| "--jobs needs an integer".to_string())?
                }
                "--state-backend" => {
                    let name = value_of("--state-backend")?;
                    options.state_backend =
                        Some(StateBackend::from_name(&name).ok_or_else(|| {
                            format!("--state-backend must be `map` or `smt`, got {name:?}")
                        })?);
                }
                "--help" | "-h" => {
                    println!(
                        "usage: scenario-runner [--matrix smoke|full] [--scenario NAME ...] \
                         [--list] [--scenario-dir DIR] [--out DIR] [--golden DIR] [--bless] \
                         [--jobs N] [--state-backend map|smt]"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(options)
    }
}

/// Builtins plus TOML-loaded scenarios; a loaded scenario with a builtin's
/// name replaces the builtin (override), new names append.
fn assemble_scenarios(options: &Options) -> Result<Vec<Scenario>, String> {
    let mut scenarios = builtin_scenarios();
    if let Some(dir) = &options.scenario_dir {
        for loaded in toml_cfg::load_dir(dir)? {
            match scenarios.iter_mut().find(|s| s.name == loaded.name) {
                Some(slot) => *slot = loaded,
                None => scenarios.push(loaded),
            }
        }
    }
    if !options.names.is_empty() {
        let mut picked = Vec::new();
        for name in &options.names {
            let found = scenarios
                .iter()
                .find(|s| &s.name == name)
                .ok_or_else(|| format!("no scenario named {name:?} (try --list)"))?;
            picked.push(found.clone());
        }
        return Ok(picked);
    }
    if options.matrix == "smoke" {
        scenarios.retain(|s| s.smoke);
    }
    Ok(scenarios)
}

/// Applies the `--state-backend` override to every selected scenario.
fn apply_backend_override(scenarios: &mut [Scenario], backend: StateBackend) {
    for scenario in scenarios {
        scenario.config.state_backend = backend;
    }
}

fn main() -> ExitCode {
    let options = match Options::parse() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("scenario-runner: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut scenarios = match assemble_scenarios(&options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scenario-runner: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(backend) = options.state_backend {
        apply_backend_override(&mut scenarios, backend);
    }

    if options.list {
        println!(
            "{:<24} {:<6} {:<28} {:>6} {:>8} {:>11}",
            "scenario", "smoke", "paper claim", "rounds", "faults", "invariants"
        );
        for s in &scenarios {
            println!(
                "{:<24} {:<6} {:<28} {:>6} {:>8} {:>11}",
                s.name,
                s.smoke,
                s.paper_claim,
                s.rounds,
                s.faults.len(),
                s.invariants.len()
            );
        }
        return ExitCode::SUCCESS;
    }

    if scenarios.is_empty() {
        eprintln!("scenario-runner: nothing to run");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::create_dir_all(&options.out_dir) {
        eprintln!(
            "scenario-runner: creating {}: {e}",
            options.out_dir.display()
        );
        return ExitCode::FAILURE;
    }

    let started = std::time::Instant::now();
    let results = run_matrix(&scenarios, options.jobs);
    let mut failures = 0usize;
    for (scenario, result) in scenarios.iter().zip(results) {
        let run = match result {
            Ok(run) => run,
            Err(e) => {
                println!("✗ {:<24} failed to run: {e}", scenario.name);
                failures += 1;
                continue;
            }
        };
        let report = render_report(&run);
        let report_path = options.out_dir.join(format!("{}.json", scenario.name));
        if let Err(e) = std::fs::write(&report_path, &report) {
            eprintln!("scenario-runner: writing {}: {e}", report_path.display());
            return ExitCode::FAILURE;
        }

        let golden_path = options.golden_dir.join(format!("{}.json", scenario.name));
        let golden_status = if options.state_backend.is_some() {
            // The override changes report bytes by design (state roots ride
            // every report); invariants still gate the run.
            "golden skipped (backend override)"
        } else if options.bless {
            if let Err(e) = std::fs::create_dir_all(&options.golden_dir) {
                eprintln!(
                    "scenario-runner: creating {}: {e}",
                    options.golden_dir.display()
                );
                return ExitCode::FAILURE;
            }
            if let Err(e) = std::fs::write(&golden_path, &report) {
                eprintln!("scenario-runner: writing {}: {e}", golden_path.display());
                return ExitCode::FAILURE;
            }
            "blessed"
        } else {
            match std::fs::read_to_string(&golden_path) {
                Ok(golden) if golden == report => "golden ok",
                Ok(_) => {
                    failures += 1;
                    "GOLDEN DRIFT"
                }
                Err(_) => {
                    failures += 1;
                    "GOLDEN MISSING"
                }
            }
        };

        let violations = run.violations();
        if violations.is_empty() {
            println!(
                "✓ {:<24} {:>2} invariants ok, {golden_status} ({})",
                scenario.name,
                run.invariants.len(),
                run.outcome.digest.chars().take(12).collect::<String>()
            );
        } else {
            failures += 1;
            println!(
                "✗ {:<24} {} of {} invariants VIOLATED, {golden_status}",
                scenario.name,
                violations.len(),
                run.invariants.len()
            );
            for v in violations {
                println!("    {}: {}", v.invariant, v.detail);
            }
        }
    }

    println!(
        "\n{} scenario(s) in {:.1}s, {failures} failure(s); reports in {}",
        scenarios.len(),
        started.elapsed().as_secs_f64(),
        options.out_dir.display()
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
