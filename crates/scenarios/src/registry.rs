//! The built-in scenario registry: one named, invariant-gated configuration
//! per adversarial behaviour of §III-C, plus mixed-adversary, workload and
//! scaling sweeps. `scenario-runner --list` prints this table; the README
//! maps each entry to its paper claim.

use cycledger_ledger::StateBackend;
use cycledger_protocol::adversary::{AdversaryConfig, Behavior, BehaviorMix};
use cycledger_protocol::config::ProtocolConfig;
use cycledger_protocol::traffic::{ArrivalShape, TrafficConfig};

use crate::invariant::Invariant;
use crate::spec::{
    FaultInjection, FaultTarget, LatencyProfile, NetFaultInjection, NetFaultKind, Scenario,
};

/// The small two-committee configuration most security scenarios run on:
/// large enough to exercise every phase (cross-shard traffic included),
/// small enough that a full worker-matrix pass stays in the smoke budget.
fn security_config(seed: u64) -> ProtocolConfig {
    ProtocolConfig {
        committees: 2,
        committee_size: 8,
        partial_set_size: 2,
        referee_size: 5,
        txs_per_round: 40,
        accounts_per_shard: 32,
        cross_shard_ratio: 0.25,
        invalid_ratio: 0.05,
        pow_difficulty: 2,
        seed,
        ..ProtocolConfig::default()
    }
}

/// The invariants every scenario asserts: determinism across the worker
/// matrix and across consecutive runs, the standard pipeline shape, and the
/// soundness baseline that no honest node is ever punished.
fn common_invariants() -> Vec<Invariant> {
    vec![
        Invariant::DigestMatchesAcrossWorkerCounts,
        Invariant::DigestStableAcrossRuns,
        Invariant::PipelineComplete,
        Invariant::NoHonestNodePunished,
    ]
}

fn leader_fault_scenario(
    name: &str,
    claim: &str,
    description: &str,
    seed: u64,
    behavior: Behavior,
    extra: Vec<Invariant>,
) -> Scenario {
    let mut scenario = Scenario::new(name, security_config(seed));
    scenario.description = description.into();
    scenario.paper_claim = claim.into();
    scenario.smoke = true;
    scenario.faults.push(FaultInjection {
        round: 0,
        target: FaultTarget::Leader(0),
        behavior,
    });
    scenario.invariants = common_invariants();
    scenario.invariants.extend([
        Invariant::AllInjectedLeaderFaultsRecovered,
        Invariant::MinEvictions(1),
    ]);
    scenario.invariants.extend(extra);
    scenario
}

/// Builds the full built-in registry.
pub fn builtin_scenarios() -> Vec<Scenario> {
    let mut scenarios = Vec::new();

    // 1 — honest baseline: liveness and throughput with no adversary.
    let mut honest = Scenario::new("honest-baseline", security_config(101));
    honest.description = "No adversary: every round produces a block, nobody is evicted, valid \
         transactions are accepted at a high rate."
        .into();
    honest.paper_claim = "§IV (liveness)".into();
    honest.smoke = true;
    honest.invariants = common_invariants();
    honest.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::NoEvictions,
        Invariant::MinMeanAcceptanceRate(0.9),
        Invariant::PackedWithinOfferedValid,
    ]);
    scenarios.push(honest);

    // 2-5 — one scenario per leader fault of §III-C.
    scenarios.push(leader_fault_scenario(
        "silent-leader",
        "Claim 3 (completeness)",
        "A fail-silent leader is detected via the partial set and evicted; \
         blocks keep flowing.",
        102,
        Behavior::SilentLeader,
        vec![Invariant::BlocksEveryRound],
    ));
    scenarios.push(leader_fault_scenario(
        "equivocating-leader",
        "Claim 3 / Algorithm 3",
        "A leader proposing different payloads to different committee halves \
         is caught by the Algorithm 3 abort, a signed witness is produced, \
         and the leader is evicted.",
        103,
        Behavior::EquivocatingLeader,
        vec![Invariant::MinWitnesses(1), Invariant::BlocksEveryRound],
    ));
    scenarios.push(leader_fault_scenario(
        "mismatched-commitment",
        "Theorem 2",
        "A leader whose semi-commitment does not match the member list is \
         impeached on an unforgeable witness.",
        104,
        Behavior::MismatchedCommitment,
        vec![Invariant::MinWitnesses(1)],
    ));
    let mut censor = leader_fault_scenario(
        "censoring-leader",
        "Lemma 6",
        "A leader concealing cross-shard transaction lists is reported by \
         timeout, evicted, and the censored transactions still apply via the \
         partial set.",
        105,
        Behavior::CensoringLeader,
        vec![
            Invariant::MinCensorshipReports(1),
            Invariant::CensoredCrossShardTxsEventuallyApply,
            Invariant::BlocksEveryRound,
        ],
    );
    censor.config.cross_shard_ratio = 0.8;
    censor.config.invalid_ratio = 0.0;
    scenarios.push(censor);

    // 6 — wrong voters: reputation punishes systematic misvoting (§VII-B).
    let mut wrong = Scenario::new("wrong-voters", security_config(106));
    wrong.config.adversary = AdversaryConfig::with_behavior(0.25, Behavior::WrongVoter);
    wrong.description = "A quarter of nodes vote the opposite of their honest judgement on \
         every transaction: blocks still flow and none of them out-earns the \
         best honest node."
        .into();
    wrong.paper_claim = "§VII-B".into();
    wrong.smoke = true;
    wrong.invariants = common_invariants();
    wrong.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::MaliciousNeverOutearnHonest,
        Invariant::AdversaryBoundRespected,
    ]);
    scenarios.push(wrong);

    // 7 — lazy voters: free-riding earns nothing (§VII-A).
    let mut lazy = Scenario::new("lazy-voters", security_config(107));
    lazy.config.adversary = AdversaryConfig::with_behavior(0.25, Behavior::LazyVoter);
    lazy.description = "A quarter of nodes always vote Unknown: their reputation stalls at \
         the bottom while honest voters accumulate scores."
        .into();
    lazy.paper_claim = "§VII-A".into();
    lazy.smoke = true;
    lazy.invariants = common_invariants();
    lazy.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::MaliciousNeverOutearnHonest,
    ]);
    scenarios.push(lazy);

    // 8 — false accusers: fabricated witnesses never evict honest leaders
    // (Claim 4's premise of honest leaders and referees is enforced by
    // per-round injections, as the paper's w.h.p. argument needs real sizes).
    let mut framed = Scenario::new("false-accusers", security_config(108));
    framed.config.adversary = AdversaryConfig::with_behavior(0.3, Behavior::FalseAccuser);
    framed.description = "Malicious partial-set members submit fabricated witnesses against \
         honest leaders every round; soundness holds and nobody is evicted."
        .into();
    framed.paper_claim = "Claim 4 (soundness)".into();
    framed.smoke = true;
    for round in 0..3 {
        framed.faults.push(FaultInjection {
            round,
            target: FaultTarget::AllLeaders,
            behavior: Behavior::Honest,
        });
        framed.faults.push(FaultInjection {
            round,
            target: FaultTarget::AllReferees,
            behavior: Behavior::Honest,
        });
    }
    framed.invariants = common_invariants();
    framed
        .invariants
        .extend([Invariant::NoEvictions, Invariant::BlocksEveryRound]);
    scenarios.push(framed);

    // 9 — mixed adversary: every behaviour at once under the paper bound.
    let mut mixed = Scenario::new("mixed-adversary", security_config(109));
    mixed.config.adversary = AdversaryConfig::uniform(0.25);
    mixed.config.cross_shard_ratio = 0.3;
    mixed.description = "A quarter of nodes drawn uniformly over all seven malicious \
         behaviours: the protocol keeps producing blocks without ever \
         punishing an honest node."
        .into();
    mixed.paper_claim = "§III-C (adversary model)".into();
    mixed.smoke = true;
    mixed.invariants = common_invariants();
    mixed.invariants.extend([
        Invariant::MinBlocksProduced(2),
        Invariant::AdversaryBoundRespected,
    ]);
    scenarios.push(mixed);

    // 10 — adversary-bound clamp: a nominal 50% adversary is deterministically
    // clamped to the paper's t < n/3 before assignment.
    let mut clamp = Scenario::new("adversary-bound-clamp", security_config(110));
    clamp.config.adversary = AdversaryConfig {
        malicious_fraction: 0.5,
        mix: BehaviorMix::Uniform,
    };
    clamp.description = "A nominal 50% corruption request is clamped to the paper's t < n/3 \
         bound at assignment time; under the clamped adversary the protocol \
         still makes progress."
        .into();
    clamp.paper_claim = "§III-C (t < n/3)".into();
    clamp.smoke = true;
    clamp.invariants = common_invariants();
    clamp.invariants.extend([
        Invariant::AdversaryBoundRespected,
        Invariant::MinBlocksProduced(1),
    ]);
    scenarios.push(clamp);

    // 11 — cross-shard heavy workload (no adversary).
    let mut cross = Scenario::new("cross-shard-heavy", security_config(111));
    cross.config.cross_shard_ratio = 0.8;
    cross.config.invalid_ratio = 0.0;
    cross.description = "80% cross-shard workload through the inter-committee path: \
         everything applies, every round."
        .into();
    cross.paper_claim = "§IV-D".into();
    cross.invariants = common_invariants();
    cross.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::CensoredCrossShardTxsEventuallyApply,
        Invariant::MinMeanAcceptanceRate(0.8),
        Invariant::PackedWithinOfferedValid,
    ]);
    scenarios.push(cross);

    // 12 — invalid flood: committees filter garbage.
    let mut invalid = Scenario::new("invalid-flood", security_config(112));
    invalid.config.invalid_ratio = 0.5;
    invalid.description = "Half the offered transactions are deliberately invalid: none of \
         them reaches a block, valid ones still flow."
        .into();
    invalid.paper_claim = "§IV-C (validation)".into();
    invalid.invariants = common_invariants();
    invalid.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::PackedWithinOfferedValid,
        Invariant::MinMeanAcceptanceRate(0.8),
        Invariant::NoEvictions,
    ]);
    scenarios.push(invalid);

    // 13 — WAN latency profile: the protocol tolerates stretched bounds.
    let mut wan = Scenario::new("wan-latency", security_config(113));
    wan.config.latency = LatencyProfile::Wan.config();
    wan.rounds = 2;
    wan.description = "The stretched wide-area latency profile (Δ=150ms, Γ=600ms): \
         synchrony-bound phases still complete every round."
        .into();
    wan.paper_claim = "§III-B (network model)".into();
    wan.invariants = common_invariants();
    wan.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::MinMeanAcceptanceRate(0.9),
    ]);
    scenarios.push(wan);

    // 14 — scaling sweep: 4 committees x 12 members, signature fast path off.
    let mut scale4 = Scenario::new(
        "scaling-4x12",
        ProtocolConfig {
            committees: 4,
            committee_size: 12,
            partial_set_size: 3,
            referee_size: 7,
            txs_per_round: 120,
            accounts_per_shard: 48,
            cross_shard_ratio: 0.3,
            invalid_ratio: 0.05,
            pow_difficulty: 2,
            verify_signatures: false,
            seed: 114,
            ..ProtocolConfig::default()
        },
    );
    scale4.description = "Four committees of twelve: the failure-probability cross-check ties \
         the analysis crate's exact hypergeometric bound to the scenario's \
         (n, t, m, c, λ)."
        .into();
    scale4.paper_claim = "§VI / Table I row 4".into();
    scale4.invariants = common_invariants();
    scale4.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::FailureProbabilityBelow(0.2),
    ]);
    scenarios.push(scale4);

    // 15 — scaling sweep: 8 committees x 8 members.
    let mut scale8 = Scenario::new(
        "scaling-8x8",
        ProtocolConfig {
            committees: 8,
            committee_size: 8,
            partial_set_size: 3,
            referee_size: 5,
            txs_per_round: 160,
            accounts_per_shard: 24,
            cross_shard_ratio: 0.3,
            invalid_ratio: 0.05,
            pow_difficulty: 2,
            verify_signatures: false,
            seed: 115,
            ..ProtocolConfig::default()
        },
    );
    scale8.rounds = 2;
    scale8.description = "Eight committees of eight: the widest shard fan-out in the matrix, \
         exercising the executor across more shards than workers."
        .into();
    scale8.paper_claim = "§VI (scalability)".into();
    scale8.invariants = common_invariants();
    scale8.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::FailureProbabilityBelow(0.35),
    ]);
    scenarios.push(scale8);

    scenarios.extend(message_driven_scenarios());
    scenarios.extend(epoch_scenarios());
    scenarios.extend(traffic_scenarios());
    scenarios.extend(state_scenarios());

    scenarios
}

/// A message-driven configuration: same shape as [`security_config`] but with
/// committee traffic routed through the discrete-event network, so the
/// net-fault schedule can actually perturb consensus.
fn driven_config(seed: u64) -> ProtocolConfig {
    ProtocolConfig {
        message_driven: true,
        ..security_config(seed)
    }
}

/// The message-driven / network-fault family: partitions with heal points,
/// a delay attack, a loss window, and clean baselines pinning that the
/// driven data plane itself neither times out nor drifts.
fn message_driven_scenarios() -> Vec<Scenario> {
    let mut scenarios = Vec::new();

    // 16 — clean message-driven baseline: the envelope data plane changes no
    // outcome on a healthy network.
    let mut baseline = Scenario::new("message-driven-baseline", driven_config(120));
    baseline.description = "Committee traffic (TXList, votes, Algorithm 3, forwards, recovery) \
         rides the discrete-event network with virtual-time deadlines; on a \
         healthy network no deadline ever fires and every valid transaction \
         still lands."
        .into();
    baseline.paper_claim = "§III-B (network model)".into();
    baseline.smoke = true;
    baseline.invariants = common_invariants();
    baseline.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::NoQuorumTimeouts,
        Invariant::MinMeanAcceptanceRate(0.9),
        Invariant::PackedWithinOfferedValid,
        Invariant::NoDoubleCommit,
        Invariant::NoEvictions,
    ]);
    scenarios.push(baseline);

    // 17 — partition of a committee majority's worth of common members, with
    // a heal: the quorum-timeout fallback fires, decisions degrade, the
    // impeachment triggered by the missing certificate is itself blocked by
    // the partition (so the honest leader keeps its seat), and liveness
    // fully resumes after the heal.
    let mut partition = Scenario::new("partition-minority", driven_config(121));
    partition.rounds = 4;
    partition.description = "Four of committee 0's five common members are severed for rounds \
         0-1 and healed from round 2: vote deadlines fire, the committee's \
         TXdecSET collapses, the impeachment cannot reach a majority under \
         the same partition, and acceptance returns to normal after the heal."
        .into();
    partition.paper_claim = "§III-B (synchrony bounds) / Claim 4 (soundness)".into();
    partition.smoke = true;
    partition.net_faults.push(NetFaultInjection {
        from_round: 0,
        until_round: 2,
        kind: NetFaultKind::IsolateCommons {
            committee: 0,
            count: 4,
        },
    });
    partition.invariants = common_invariants();
    partition.invariants.extend([
        Invariant::MinQuorumTimeouts(2),
        Invariant::MinNetDroppedMessages(1),
        Invariant::BlocksEveryRound,
        Invariant::NoEvictions,
        Invariant::MinAcceptanceFromRound(2, 0.9),
        Invariant::NoDoubleCommit,
    ]);
    scenarios.push(partition);

    // 18 — isolated leader: a leader severed from its whole committee is
    // indistinguishable from a fail-silent one, so the committee impeaches
    // and replaces it and the round still completes. The synchrony
    // assumption is violated *for that node*, so this is the one documented
    // case where an honest node loses its seat — which is why the scenario
    // asserts eviction rather than `NoHonestNodePunished`.
    let mut isolated = Scenario::new("partition-isolated-leader", driven_config(122));
    isolated.rounds = 3;
    isolated.description = "The leader of committee 0 is severed from everyone in round 0 and \
         healed afterwards: no TXList or proposal escapes the partition, the \
         committee times out, impeaches the unreachable leader, retries under \
         a partial-set member, and keeps producing blocks."
        .into();
    isolated.paper_claim = "Claim 3 (completeness, under a synchrony violation)".into();
    isolated.net_faults.push(NetFaultInjection {
        from_round: 0,
        until_round: 1,
        kind: NetFaultKind::IsolateLeader { committee: 0 },
    });
    isolated.invariants = vec![
        Invariant::DigestMatchesAcrossWorkerCounts,
        Invariant::DigestStableAcrossRuns,
        Invariant::PipelineComplete,
        Invariant::MinQuorumTimeouts(1),
        Invariant::MinEvictions(1),
        Invariant::BlocksEveryRound,
        Invariant::BlocksFromRound(1),
        Invariant::NoDoubleCommit,
    ];
    scenarios.push(isolated);

    // 19 — targeted delay attack: a partial-set straggler's votes are pushed
    // past the 4Δ deadline without a single message being lost. The timeout
    // path is taken every partitioned round, yet decisions are unchanged
    // (the other seven members carry the strict majority) — a pure timing
    // perturbation.
    let mut straggler = Scenario::new("targeted-delay-straggler", driven_config(123));
    straggler.rounds = 3;
    straggler.description = "All traffic to and from one partial-set member of committee 0 is \
         delayed by 600 ms for rounds 0-1 (the vote deadline is 4Δ = 200 ms): \
         its votes expire to Unknown, the quorum-timeout path fires, and \
         nothing else changes — no losses, no evictions, full acceptance."
        .into();
    straggler.paper_claim = "§III-B (delay attacks within synchrony bounds)".into();
    straggler.smoke = true;
    straggler.net_faults.push(NetFaultInjection {
        from_round: 0,
        until_round: 2,
        kind: NetFaultKind::Delay {
            target: FaultTarget::PartialSetMember {
                committee: 0,
                index: 0,
            },
            micros: 600_000,
        },
    });
    straggler.invariants = common_invariants();
    straggler.invariants.extend([
        Invariant::MinQuorumTimeouts(2),
        Invariant::BlocksEveryRound,
        Invariant::MinMeanAcceptanceRate(0.9),
        Invariant::NoEvictions,
        Invariant::NoDoubleCommit,
    ]);
    scenarios.push(straggler);

    // 20 — loss burst: a lossy window over the first two rounds, healed
    // afterwards. Dropped envelopes perturb vote collection; liveness and
    // safety hold throughout and acceptance recovers once the loss clears.
    let mut lossy = Scenario::new("loss-burst", driven_config(124));
    lossy.rounds = 4;
    lossy.description = "Every message is dropped with probability 15% during rounds 0-1 \
         (deterministically sampled): some votes and echoes vanish, deadlines \
         fire, blocks keep flowing, nothing commits twice, and acceptance \
         recovers from round 2 on."
        .into();
    lossy.paper_claim = "§III-B (partial synchrony)".into();
    lossy.net_faults.push(NetFaultInjection {
        from_round: 0,
        until_round: 2,
        kind: NetFaultKind::Loss { ppm: 150_000 },
    });
    lossy.invariants = vec![
        Invariant::DigestMatchesAcrossWorkerCounts,
        Invariant::DigestStableAcrossRuns,
        Invariant::PipelineComplete,
        Invariant::MinNetDroppedMessages(10),
        Invariant::MinBlocksProduced(3),
        Invariant::BlocksFromRound(2),
        Invariant::MinAcceptanceFromRound(2, 0.9),
        Invariant::NoDoubleCommit,
    ];
    scenarios.push(lossy);

    // 21 — WAN + message-driven: deadlines are derived from Δ/Γ, so the
    // stretched profile produces no spurious timeouts.
    let mut wan = Scenario::new("message-driven-wan", driven_config(125));
    wan.config.latency = LatencyProfile::Wan.config();
    wan.rounds = 2;
    wan.description = "The message-driven plane under the wide-area profile (Δ=150ms, \
         Γ=600ms): virtual-time deadlines scale with the synchrony bounds, so \
         a healthy WAN round never times out."
        .into();
    wan.paper_claim = "§III-B (network model)".into();
    wan.invariants = common_invariants();
    wan.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::NoQuorumTimeouts,
        Invariant::MinMeanAcceptanceRate(0.9),
        Invariant::NoDoubleCommit,
    ]);
    scenarios.push(wan);

    scenarios
}

/// The epoch-lifecycle family: committee reconfiguration every E rounds with
/// validator churn, state-sync catch-up for joiners, an adversary whose
/// corrupt fraction drifts toward the paper's `t` as malicious validators
/// join, and a handover attacked by a partition. The base `security_config`
/// geometry has 21 nodes against a sortition floor of 12, leaving headroom
/// for the leave lottery.
fn epoch_scenarios() -> Vec<Scenario> {
    let mut scenarios = Vec::new();

    // 22 — epoch baseline: three clean boundaries on the classic synchronous
    // path. Every joiner catches up at its own boundary, nobody votes while
    // `Syncing`, and the pre-epoch phases stay byte-identical (the epoch
    // machinery runs *between* rounds, never inside the pipeline).
    let mut baseline = Scenario::new("epoch-baseline", security_config(130));
    baseline.rounds = 6;
    baseline.config.epoch_length = 2;
    baseline.config.joins_per_epoch = 2;
    baseline.config.leaves_per_epoch = 1;
    baseline.description = "Epochs of two rounds with two joins and one leave per boundary: the \
         PVSS beacon re-seeds sortition, committees reshuffle with reputation \
         carry-over, every joiner completes state sync at its own boundary, \
         and blocks keep flowing through all three transitions."
        .into();
    baseline.paper_claim = "§VII-A (epochal reconfiguration)".into();
    baseline.smoke = true;
    baseline.invariants = common_invariants();
    baseline.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::MinEpochTransitions(3),
        Invariant::MinSynced(6),
        Invariant::NoSyncingVotes,
        Invariant::PackedWithinOfferedValid,
    ]);
    scenarios.push(baseline);

    // 23 — steady churn over the message-driven plane: four boundaries, two
    // joins and two leaves each, every committee message on the discrete-
    // event network. The validator set turns over by ~40% across the run
    // while liveness and safety hold.
    let mut churn = Scenario::new("churn-steady", driven_config(131));
    churn.rounds = 8;
    churn.config.epoch_length = 2;
    churn.config.joins_per_epoch = 2;
    churn.config.leaves_per_epoch = 2;
    churn.description = "Eight message-driven rounds across four epoch boundaries, each \
         admitting two validators and retiring up to two by lottery: state \
         sync rides the same network as consensus, every joiner turns Active \
         at its boundary, and no transaction ever commits twice."
        .into();
    churn.paper_claim = "§VII-A (validator churn)".into();
    churn.smoke = true;
    churn.invariants = common_invariants();
    churn.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::MinEpochTransitions(4),
        Invariant::MinSynced(8),
        Invariant::NoSyncingVotes,
        Invariant::NoDoubleCommit,
    ]);
    scenarios.push(churn);

    // 24 — adversarial epoch: joiner NodeIds are predictable (appended
    // contiguously), so the spec flips each admitted pair malicious one
    // round after its boundary. The corrupt fraction drifts from 4/21 up to
    // exactly the paper bound of 8/27 — the protocol must hold at t, not
    // just below it.
    let mut adversarial = Scenario::new("adversarial-epoch", driven_config(134));
    adversarial.rounds = 6;
    adversarial.config.epoch_length = 2;
    adversarial.config.joins_per_epoch = 2;
    adversarial.config.adversary = AdversaryConfig::uniform(0.2);
    adversarial.description = "Every epoch's two joiners are corrupted right after admission \
         (wrong-voter / lazy-voter), drifting the corrupt fraction from 4 of \
         21 to the exact t < n/3 bound at 8 of 27: blocks keep flowing, \
         syncing members never vote, and no honest node is punished."
        .into();
    adversarial.paper_claim = "§III-C (t < n/3, adaptive joins)".into();
    for (round, joiner) in [(2, 21), (2, 22), (4, 23), (4, 24)] {
        adversarial.faults.push(FaultInjection {
            round,
            target: FaultTarget::Node(joiner),
            behavior: if joiner % 2 == 1 {
                Behavior::WrongVoter
            } else {
                Behavior::LazyVoter
            },
        });
    }
    adversarial.invariants = common_invariants();
    adversarial.invariants.extend([
        Invariant::AdversaryBoundRespected,
        Invariant::MinEpochTransitions(3),
        Invariant::NoSyncingVotes,
        Invariant::MinBlocksProduced(4),
        Invariant::NoDoubleCommit,
    ]);
    scenarios.push(adversarial);

    // 25 — handover under partition: the joiner id range (including ids that
    // do not exist yet) is severed across two boundaries, so state sync
    // times out with bounded backoff and the joiners stay `Syncing` —
    // abstaining, never voting — until the heal at round 4 lets the
    // start-of-round retry succeed.
    let mut handover = Scenario::new("handover-under-partition", driven_config(133));
    handover.rounds = 6;
    handover.config.epoch_length = 2;
    handover.config.joins_per_epoch = 2;
    handover.description = "A partition severs every joining validator through rounds 1-3, \
         covering two epoch boundaries: their state-sync sessions time out \
         through peer rotation and backoff, they abstain (counted Unknown) \
         without ever voting, the sitting committees keep producing blocks, \
         and the round-4 heal lets every delayed joiner catch up."
        .into();
    handover.paper_claim = "§VII-A (handover) / §III-B (synchrony)".into();
    handover.net_faults.push(NetFaultInjection {
        from_round: 1,
        until_round: 4,
        kind: NetFaultKind::IsolateJoiners,
    });
    handover.invariants = common_invariants();
    handover.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::MinEpochTransitions(3),
        Invariant::MinSyncTimeouts(1),
        Invariant::MinSynced(6),
        Invariant::NoSyncingVotes,
        Invariant::NoDoubleCommit,
    ]);
    scenarios.push(handover);

    scenarios
}

/// The open-loop traffic family: transactions arrive on a virtual-time
/// clock at a configured rate instead of being replenished to a full batch
/// each round, and the scenarios assert latency/throughput SLOs on top of
/// the usual safety invariants. The base `security_config` geometry sustains
/// `txs_per_round / (8Δ + 4Γ)` ≈ 33 tx/s, so 20 tx/s is comfortably
/// under-provisioned and 66 tx/s is a deliberate 2× overload.
fn traffic_scenarios() -> Vec<Scenario> {
    let mut scenarios = Vec::new();

    // 26 — under-provisioned constant arrivals: every transaction confirms
    // within its own round, so the p99 confirm latency stays below one
    // nominal round (24Δ) and the sustained throughput tracks the offered
    // rate minus the deliberately-invalid fraction.
    let mut baseline = Scenario::new("traffic-baseline", security_config(135));
    baseline.rounds = 5;
    baseline.config.traffic = Some(TrafficConfig {
        rate_tps: 20.0,
        shape: ArrivalShape::Constant,
        warmup_rounds: 1,
    });
    baseline.description = "Open-loop constant arrivals at 20 tx/s against ~33 tx/s of round \
         capacity: no backlog forms, every arrival confirms inside its own \
         round, and the p99 confirm latency stays below one nominal round \
         duration (24Δ)."
        .into();
    baseline.paper_claim = "§VIII (latency evaluation)".into();
    baseline.smoke = true;
    baseline.invariants = common_invariants();
    baseline.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::PackedWithinOfferedValid,
        Invariant::MaxP99Latency(26.0),
        Invariant::MinSustainedTps(17.0),
    ]);
    scenarios.push(baseline);

    // 27 — Poisson arrivals at the same mean rate: bursts may momentarily
    // exceed per-round capacity (an arrival can slip one round), so the
    // latency bound is looser, but the sustained rate still tracks the mean.
    let mut poisson = Scenario::new("traffic-poisson", security_config(136));
    poisson.rounds = 6;
    poisson.config.traffic = Some(TrafficConfig {
        rate_tps: 20.0,
        shape: ArrivalShape::Poisson,
        warmup_rounds: 1,
    });
    poisson.description = "Open-loop Poisson arrivals with a 20 tx/s mean: inter-arrival gaps \
         are drawn from the exponential inverse-CDF on the deterministic \
         DRBG, bursts stay within a round or two of capacity, and throughput \
         converges on the offered mean."
        .into();
    poisson.paper_claim = "§VIII (latency evaluation)".into();
    poisson.smoke = true;
    poisson.invariants = common_invariants();
    poisson.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::PackedWithinOfferedValid,
        Invariant::MaxP99Latency(50.0),
        Invariant::MinSustainedTps(14.0),
    ]);
    scenarios.push(poisson);

    // 28 — 2× overload: arrivals outpace capacity, the backlog grows without
    // bound, and confirm latency diverges — but the *sustained* throughput
    // pins at round capacity, which is the saturation property the
    // `gen_bench_latency` knee sweep measures. No latency SLO is asserted
    // because none can hold past saturation.
    let mut overload = Scenario::new("traffic-overload", security_config(137));
    overload.rounds = 6;
    overload.config.traffic = Some(TrafficConfig {
        rate_tps: 66.0,
        shape: ArrivalShape::Constant,
        warmup_rounds: 1,
    });
    overload.description = "Open-loop constant arrivals at 66 tx/s against ~33 tx/s of \
         capacity: the backlog grows every round and waiting time diverges, \
         yet the pipeline keeps confirming at full round capacity — saturated \
         but never collapsing."
        .into();
    overload.paper_claim = "§VIII (throughput saturation)".into();
    overload.smoke = true;
    overload.invariants = common_invariants();
    overload.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::PackedWithinOfferedValid,
        Invariant::MinSustainedTps(25.0),
    ]);
    scenarios.push(overload);

    // 29 — the long soak: ten thousand rounds of open-loop traffic across a
    // hundred epoch boundaries under the uniform adversary mix. Single
    // worker count and `smoke = false` keep it out of the debug-mode matrix
    // (the release-mode latency gate runs it via
    // `scenario-runner --scenario traffic-soak-10k`).
    let mut soak = Scenario::new("traffic-soak-10k", security_config(138));
    soak.rounds = 10_000;
    soak.workers = vec![1];
    soak.config.traffic = Some(TrafficConfig {
        rate_tps: 20.0,
        shape: ArrivalShape::Poisson,
        warmup_rounds: 2,
    });
    soak.config.epoch_length = 100;
    soak.config.joins_per_epoch = 1;
    soak.config.leaves_per_epoch = 1;
    soak.config.adversary = AdversaryConfig::uniform(0.2);
    soak.description = "Ten thousand rounds of 20 tx/s Poisson traffic with a fifth of the \
         nodes drawn uniformly over every malicious behaviour and a churn \
         boundary every hundred rounds: latency SLOs hold across ~100 epochs \
         of leader faults, censorship stalls, and validator turnover."
        .into();
    soak.paper_claim = "§VIII (sustained operation) / §VII-A".into();
    soak.smoke = false;
    // `NoHonestNodePunished` is deliberately absent: the paper's soundness
    // claim is w.h.p. *per round*, and at this small geometry (committees of
    // 8, referee set of 5) the per-round failure probability is large enough
    // that ten thousand adversarial rounds are statistically guaranteed to
    // evict a handful of honest nodes — observed: ~7 per 10k rounds. The
    // scaling scenarios pin that probability analytically via
    // `FailureProbabilityBelow`; the soak instead asserts that throughput
    // and latency SLOs survive the resulting churn.
    soak.invariants = vec![
        Invariant::DigestMatchesAcrossWorkerCounts,
        Invariant::DigestStableAcrossRuns,
        Invariant::PipelineComplete,
    ];
    soak.invariants.extend([
        Invariant::MinBlocksProduced(9_500),
        Invariant::MinEpochTransitions(99),
        Invariant::NoSyncingVotes,
        Invariant::AdversaryBoundRespected,
        Invariant::MaxP99Latency(40.0),
        Invariant::MinSustainedTps(15.0),
    ]);
    scenarios.push(soak);

    scenarios
}

/// The authenticated-state family: the sparse Merkle UTXO backend commits a
/// versioned state root per shard per round (riding each report as a tagged
/// canonical-bytes extension), and sampled light-client proofs are verified
/// against exactly those published roots. Validation decisions are identical
/// to the map backend's, so the rest of the matrix is untouched.
fn state_scenarios() -> Vec<Scenario> {
    let mut scenarios = Vec::new();

    // 30 — authenticated baseline: every round publishes one sparse Merkle
    // root per shard, and the run stays deterministic across the worker
    // matrix with the per-round commit folded into block apply.
    let mut auth = Scenario::new("state-authenticated", security_config(140));
    auth.config.state_backend = StateBackend::Smt;
    auth.description = "The sparse Merkle UTXO backend under the standard mixed workload: \
         every round's report carries one state root per shard, blocks keep \
         flowing, and the digests stay schedule-independent with the \
         per-round tree commit folded into block apply."
        .into();
    auth.paper_claim = "§IV-C (authenticated state)".into();
    auth.smoke = true;
    auth.invariants = common_invariants();
    auth.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::StateRootsEveryRound,
        Invariant::PackedWithinOfferedValid,
        Invariant::MinMeanAcceptanceRate(0.8),
    ]);
    scenarios.push(auth);

    // 31 — light clients: sampled inclusion proofs for committed UTXOs and
    // an exclusion proof per shard for a never-credited outpoint, all
    // verified by the crypto crate's standalone verifier against the final
    // round's published roots — the paper's "partial state" reading, where a
    // member holds a root and checks membership without the full set.
    let mut light = Scenario::new("light-client-proof", security_config(141));
    light.config.state_backend = StateBackend::Smt;
    light.rounds = 4;
    light.config.cross_shard_ratio = 0.4;
    light.description = "Four rounds on the sparse Merkle backend, then a light-client audit: \
         eight sampled inclusion proofs per shard plus one exclusion proof \
         per shard, each verified against the last report's state roots with \
         nothing but the root and the proof in hand."
        .into();
    light.paper_claim = "§IV-C (partial state / light verification)".into();
    light.smoke = true;
    light.invariants = common_invariants();
    light.invariants.extend([
        Invariant::BlocksEveryRound,
        Invariant::StateRootsEveryRound,
        Invariant::LightClientProofsVerify(8),
    ]);
    scenarios.push(light);

    scenarios
}

/// The names of the smoke subset (fast, CI-gated).
pub fn smoke_names() -> Vec<String> {
    builtin_scenarios()
        .into_iter()
        .filter(|s| s.smoke)
        .map(|s| s.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn at_least_twelve_builtins_all_valid_with_unique_names() {
        let scenarios = builtin_scenarios();
        assert!(scenarios.len() >= 12, "only {} builtins", scenarios.len());
        let names: HashSet<_> = scenarios.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), scenarios.len(), "duplicate scenario names");
        for s in &scenarios {
            assert_eq!(s.validate(), Ok(()), "{}", s.name);
            assert!(!s.description.is_empty(), "{} has no description", s.name);
            assert!(!s.paper_claim.is_empty(), "{} has no paper claim", s.name);
        }
    }

    #[test]
    fn every_behavior_variant_is_covered_with_an_invariant() {
        let scenarios = builtin_scenarios();
        let mut covered: HashSet<Behavior> = HashSet::new();
        for s in &scenarios {
            assert!(!s.invariants.is_empty());
            for f in &s.faults {
                covered.insert(f.behavior);
            }
            match s.config.adversary.mix {
                BehaviorMix::Fixed(b) => {
                    if s.config.adversary.malicious_fraction > 0.0 {
                        covered.insert(b);
                    }
                }
                BehaviorMix::Uniform => {
                    // Uniform draws over all malicious behaviours.
                    covered.extend([
                        Behavior::SilentLeader,
                        Behavior::EquivocatingLeader,
                        Behavior::MismatchedCommitment,
                        Behavior::CensoringLeader,
                        Behavior::WrongVoter,
                        Behavior::LazyVoter,
                        Behavior::FalseAccuser,
                    ]);
                }
            }
        }
        covered.insert(Behavior::Honest); // the baseline scenario
        assert_eq!(covered.len(), 8, "uncovered behaviours remain");
        // Beyond mix coverage, every leader fault has a *dedicated* scenario
        // with a targeted injection.
        for behavior in [
            Behavior::SilentLeader,
            Behavior::EquivocatingLeader,
            Behavior::MismatchedCommitment,
            Behavior::CensoringLeader,
        ] {
            assert!(
                scenarios
                    .iter()
                    .any(|s| s.faults.iter().any(|f| f.behavior == behavior)),
                "{behavior:?} has no targeted scenario"
            );
        }
    }

    #[test]
    fn traffic_family_is_open_loop_with_slos() {
        let scenarios = builtin_scenarios();
        let traffic: Vec<_> = scenarios
            .iter()
            .filter(|s| s.config.traffic.is_some())
            .collect();
        assert!(traffic.len() >= 4, "traffic family too thin");
        for s in &traffic {
            assert!(
                s.invariants.iter().any(|i| matches!(
                    i,
                    Invariant::MaxP99Latency(_) | Invariant::MinSustainedTps(_)
                )),
                "{}: open-loop scenario asserts no traffic SLO",
                s.name
            );
        }
        // SLO invariants only make sense with an open-loop driver attached;
        // `Scenario::validate` enforces this, the registry must respect it.
        for s in &scenarios {
            if s.config.traffic.is_none() {
                assert!(
                    !s.invariants.iter().any(|i| matches!(
                        i,
                        Invariant::MaxP99Latency(_) | Invariant::MinSustainedTps(_)
                    )),
                    "{}: traffic SLO on a closed-loop scenario",
                    s.name
                );
            }
        }
        // The soak is the only long scenario, and it opts out of the debug
        // matrix via the `rounds > 1000` exemption plus a single-worker list.
        for s in &scenarios {
            if s.rounds > 1000 {
                assert!(!s.smoke, "{}: long scenarios cannot be smoke", s.name);
                assert_eq!(
                    s.workers,
                    vec![1],
                    "{}: long scenarios run one worker",
                    s.name
                );
            }
        }
    }

    #[test]
    fn smoke_subset_is_marked() {
        let smoke = smoke_names();
        assert!(smoke.len() >= 8, "smoke matrix too thin: {smoke:?}");
        assert!(smoke.contains(&"honest-baseline".to_string()));
        assert!(smoke.contains(&"mixed-adversary".to_string()));
    }
}
