//! Machine-checkable invariants: each maps one of the paper's claims onto a
//! predicate over a [`ScenarioOutcome`].

use cycledger_analysis::failure::cycledger_round_failure_exact;
use cycledger_protocol::adversary::AdversaryConfig;

use crate::outcome::ScenarioOutcome;

/// The phase names of the standard pipeline, in protocol order — the
/// [`Invariant::PipelineComplete`] reference sequence.
pub const STANDARD_PHASES: [&str; 8] = [
    "committee-configuration",
    "semi-commitment-exchange",
    "intra-consensus",
    "intra-recovery",
    "inter-consensus",
    "reputation-update",
    "selection",
    "block-generation",
];

/// A machine-checkable claim over a scenario run.
///
/// Every variant has a canonical kebab-case spec string (see
/// [`Invariant::to_spec`]) used by the TOML schema and the JSON reports;
/// parameterised variants append `:value`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Invariant {
    /// The canonical summary digest is identical for every worker count in
    /// the scenario's matrix (the engine's determinism contract).
    DigestMatchesAcrossWorkerCounts,
    /// Two consecutive fresh runs produce the same digest.
    DigestStableAcrossRuns,
    /// No recovery ever evicted a node that was honest when accused
    /// (soundness, Claim 4 / Theorem 2).
    NoHonestNodePunished,
    /// Every node flipped to a leader fault by an injection was evicted by a
    /// recovery (completeness, Claim 3).
    AllInjectedLeaderFaultsRecovered,
    /// Every offered cross-shard transaction lands in a block despite
    /// censorship (Lemma 6: concealment cannot block cross-shard progress —
    /// anything weaker would be satisfied by uncensored committees alone).
    CensoredCrossShardTxsEventuallyApply,
    /// A block was produced every round (liveness).
    BlocksEveryRound,
    /// At least this many blocks were produced.
    MinBlocksProduced(usize),
    /// Mean acceptance rate of valid offered transactions is at least this.
    MinMeanAcceptanceRate(f64),
    /// No leader was evicted anywhere in the run.
    NoEvictions,
    /// At least this many evictions happened.
    MinEvictions(usize),
    /// At least this many censorship (timeout) reports were filed.
    MinCensorshipReports(usize),
    /// At least this many signed witnesses were produced.
    MinWitnesses(usize),
    /// No round packs more transactions than it was offered valid ones
    /// (invalid transactions never inflate blocks).
    PackedWithinOfferedValid,
    /// No malicious node ends the run with more reputation than the best
    /// honest node (§VII-A/§VII-B: free-riders stall, cheaters are cut).
    MaliciousNeverOutearnHonest,
    /// The realised corrupted-node count respects the paper's `t < n/3`
    /// bound (the [`AdversaryConfig::assign`] clamp).
    AdversaryBoundRespected,
    /// The analysis crate's exact per-round failure probability for this
    /// scenario's `(n, t, m, c, λ)` stays below the bound (Table I row 4
    /// cross-check).
    FailureProbabilityBelow(f64),
    /// Every round executed the eight standard phases in protocol order
    /// (checked through the engine's observer hooks).
    PipelineComplete,
    /// Message-driven mode: at least this many quorum-timeout fallbacks
    /// fired across the run (a fault scenario must actually perturb the
    /// vote collection, or it proves nothing).
    MinQuorumTimeouts(usize),
    /// Message-driven mode: no quorum timeout ever fired (a clean or
    /// merely-jittered run stays on the fast path).
    NoQuorumTimeouts,
    /// Message-driven mode: the network dropped at least this many
    /// envelopes (the partition/loss schedule really cut traffic).
    MinNetDroppedMessages(u64),
    /// Liveness resumes after a heal: every round from `r` on produced a
    /// block.
    BlocksFromRound(u64),
    /// Acceptance recovers after a heal: the mean acceptance rate over
    /// rounds `>= r` is at least the given rate.
    MinAcceptanceFromRound(u64, f64),
    /// Safety: no transaction was committed twice across the whole chain
    /// (the partition/reorder schedule never double-applied anything).
    NoDoubleCommit,
    /// At least this many epoch transitions (leave lottery, joins, state
    /// sync, committee reshuffle) actually ran — an epoch scenario must
    /// cross boundaries or it proves nothing.
    MinEpochTransitions(usize),
    /// No vote was ever received from a `Syncing` member: a validator that
    /// has not verified its chain tip abstains (counted `Unknown`) until
    /// `SyncDone`, full stop.
    NoSyncingVotes,
    /// At least this many members completed state sync and turned `Active`
    /// across the run's epoch boundaries.
    MinSynced(usize),
    /// At least this many state-sync requests timed out — a
    /// handover-under-partition scenario must actually delay catch-up.
    MinSyncTimeouts(usize),
    /// Open-loop traffic: the p99 confirm latency, measured in Δ units of
    /// the scenario's latency profile, is at most this (the latency SLO).
    /// Requires `config.traffic` — a closed-loop run has no latency
    /// distribution to gate.
    MaxP99Latency(f64),
    /// Open-loop traffic: confirmed throughput over the whole run, in
    /// transactions per second of virtual time, is at least this (the
    /// sustained-rate SLO). Requires `config.traffic`.
    MinSustainedTps(f64),
    /// Authenticated state: every round's report carries exactly one sparse
    /// Merkle state root per shard. Requires `state_backend = "smt"` — the
    /// map backend publishes no roots, so the check would be vacuous.
    StateRootsEveryRound,
    /// Light clients: at least this many sampled inclusion proofs (plus one
    /// exclusion proof per shard) verified against the final round's
    /// published state roots, with zero failures and zero mismatches between
    /// the reported roots and the live UTXO sets. Requires
    /// `state_backend = "smt"`.
    LightClientProofsVerify(usize),
}

/// Outcome of checking one invariant.
#[derive(Clone, Debug)]
pub struct InvariantResult {
    /// The canonical spec string of the invariant.
    pub invariant: String,
    /// Whether the invariant held.
    pub passed: bool,
    /// Human-readable evidence (measured values either way).
    pub detail: String,
}

impl Invariant {
    /// Canonical spec string (TOML schema + reports).
    pub fn to_spec(self) -> String {
        match self {
            Invariant::DigestMatchesAcrossWorkerCounts => {
                "digest-matches-across-worker-counts".into()
            }
            Invariant::DigestStableAcrossRuns => "digest-stable-across-runs".into(),
            Invariant::NoHonestNodePunished => "no-honest-node-punished".into(),
            Invariant::AllInjectedLeaderFaultsRecovered => {
                "all-injected-leader-faults-recovered".into()
            }
            Invariant::CensoredCrossShardTxsEventuallyApply => {
                "censored-cross-shard-txs-eventually-apply".into()
            }
            Invariant::BlocksEveryRound => "blocks-every-round".into(),
            Invariant::MinBlocksProduced(n) => format!("min-blocks:{n}"),
            Invariant::MinMeanAcceptanceRate(r) => format!("min-acceptance:{r:?}"),
            Invariant::NoEvictions => "no-evictions".into(),
            Invariant::MinEvictions(n) => format!("min-evictions:{n}"),
            Invariant::MinCensorshipReports(n) => format!("min-censorship-reports:{n}"),
            Invariant::MinWitnesses(n) => format!("min-witnesses:{n}"),
            Invariant::PackedWithinOfferedValid => "packed-within-offered-valid".into(),
            Invariant::MaliciousNeverOutearnHonest => "malicious-never-outearn-honest".into(),
            Invariant::AdversaryBoundRespected => "adversary-bound-respected".into(),
            Invariant::FailureProbabilityBelow(p) => format!("failure-probability-below:{p:?}"),
            Invariant::PipelineComplete => "pipeline-complete".into(),
            Invariant::MinQuorumTimeouts(n) => format!("min-quorum-timeouts:{n}"),
            Invariant::NoQuorumTimeouts => "no-quorum-timeouts".into(),
            Invariant::MinNetDroppedMessages(n) => format!("min-net-dropped:{n}"),
            Invariant::BlocksFromRound(r) => format!("blocks-from-round:{r}"),
            Invariant::MinAcceptanceFromRound(r, rate) => {
                format!("min-acceptance-from:{r}:{rate:?}")
            }
            Invariant::NoDoubleCommit => "no-double-commit".into(),
            Invariant::MinEpochTransitions(n) => format!("min-epoch-transitions:{n}"),
            Invariant::NoSyncingVotes => "no-syncing-votes".into(),
            Invariant::MinSynced(n) => format!("min-synced:{n}"),
            Invariant::MinSyncTimeouts(n) => format!("min-sync-timeouts:{n}"),
            Invariant::MaxP99Latency(d) => format!("max-p99-latency:{d:?}"),
            Invariant::MinSustainedTps(t) => format!("min-sustained-tps:{t:?}"),
            Invariant::StateRootsEveryRound => "state-root".into(),
            Invariant::LightClientProofsVerify(n) => format!("light-client-proof:{n}"),
        }
    }

    /// Parses a canonical spec string.
    pub fn from_spec(s: &str) -> Result<Invariant, String> {
        let (head, param) = match s.split_once(':') {
            Some((h, p)) => (h, Some(p)),
            None => (s, None),
        };
        let need_usize = |p: Option<&str>| -> Result<usize, String> {
            p.ok_or_else(|| format!("invariant {s:?} needs a numeric parameter"))?
                .parse()
                .map_err(|_| format!("bad numeric parameter in invariant {s:?}"))
        };
        let need_f64 = |p: Option<&str>| -> Result<f64, String> {
            p.ok_or_else(|| format!("invariant {s:?} needs a numeric parameter"))?
                .parse()
                .map_err(|_| format!("bad numeric parameter in invariant {s:?}"))
        };
        Ok(match head {
            "digest-matches-across-worker-counts" => Invariant::DigestMatchesAcrossWorkerCounts,
            "digest-stable-across-runs" => Invariant::DigestStableAcrossRuns,
            "no-honest-node-punished" => Invariant::NoHonestNodePunished,
            "all-injected-leader-faults-recovered" => Invariant::AllInjectedLeaderFaultsRecovered,
            "censored-cross-shard-txs-eventually-apply" => {
                Invariant::CensoredCrossShardTxsEventuallyApply
            }
            "blocks-every-round" => Invariant::BlocksEveryRound,
            "min-blocks" => Invariant::MinBlocksProduced(need_usize(param)?),
            "min-acceptance" => Invariant::MinMeanAcceptanceRate(need_f64(param)?),
            "no-evictions" => Invariant::NoEvictions,
            "min-evictions" => Invariant::MinEvictions(need_usize(param)?),
            "min-censorship-reports" => Invariant::MinCensorshipReports(need_usize(param)?),
            "min-witnesses" => Invariant::MinWitnesses(need_usize(param)?),
            "packed-within-offered-valid" => Invariant::PackedWithinOfferedValid,
            "malicious-never-outearn-honest" => Invariant::MaliciousNeverOutearnHonest,
            "adversary-bound-respected" => Invariant::AdversaryBoundRespected,
            "failure-probability-below" => Invariant::FailureProbabilityBelow(need_f64(param)?),
            "pipeline-complete" => Invariant::PipelineComplete,
            "min-quorum-timeouts" => Invariant::MinQuorumTimeouts(need_usize(param)?),
            "no-quorum-timeouts" => Invariant::NoQuorumTimeouts,
            "min-net-dropped" => {
                let n = param
                    .ok_or_else(|| format!("invariant {s:?} needs a numeric parameter"))?
                    .parse()
                    .map_err(|_| format!("bad numeric parameter in invariant {s:?}"))?;
                Invariant::MinNetDroppedMessages(n)
            }
            "blocks-from-round" => {
                let r = param
                    .ok_or_else(|| format!("invariant {s:?} needs a round parameter"))?
                    .parse()
                    .map_err(|_| format!("bad round parameter in invariant {s:?}"))?;
                Invariant::BlocksFromRound(r)
            }
            "min-acceptance-from" => {
                let rest =
                    param.ok_or_else(|| format!("invariant {s:?} needs round:rate parameters"))?;
                let (round, rate) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("invariant {s:?} needs round:rate parameters"))?;
                Invariant::MinAcceptanceFromRound(
                    round
                        .parse()
                        .map_err(|_| format!("bad round parameter in invariant {s:?}"))?,
                    rate.parse()
                        .map_err(|_| format!("bad rate parameter in invariant {s:?}"))?,
                )
            }
            "no-double-commit" => Invariant::NoDoubleCommit,
            "min-epoch-transitions" => Invariant::MinEpochTransitions(need_usize(param)?),
            "no-syncing-votes" => Invariant::NoSyncingVotes,
            "min-synced" => Invariant::MinSynced(need_usize(param)?),
            "min-sync-timeouts" => Invariant::MinSyncTimeouts(need_usize(param)?),
            "max-p99-latency" => Invariant::MaxP99Latency(need_f64(param)?),
            "min-sustained-tps" => Invariant::MinSustainedTps(need_f64(param)?),
            "state-root" => Invariant::StateRootsEveryRound,
            "light-client-proof" => Invariant::LightClientProofsVerify(need_usize(param)?),
            other => return Err(format!("unknown invariant {other:?}")),
        })
    }

    /// Checks the invariant against a finished run.
    pub fn check(self, outcome: &ScenarioOutcome) -> InvariantResult {
        let (passed, detail) = self.evaluate(outcome);
        InvariantResult {
            invariant: self.to_spec(),
            passed,
            detail,
        }
    }

    fn evaluate(self, outcome: &ScenarioOutcome) -> (bool, String) {
        let summary = &outcome.summary;
        match self {
            Invariant::DigestMatchesAcrossWorkerCounts => {
                let baseline = &outcome.digest;
                let mismatched: Vec<String> = outcome
                    .worker_digests
                    .iter()
                    .filter(|(_, d)| d != baseline)
                    .map(|(w, d)| format!("{w} workers -> {d}"))
                    .collect();
                if mismatched.is_empty() {
                    let counts: Vec<String> = outcome
                        .worker_digests
                        .iter()
                        .map(|(w, _)| w.to_string())
                        .collect();
                    (
                        true,
                        format!("digest {} at {} workers", baseline, counts.join("/")),
                    )
                } else {
                    (false, format!("digest drift: {}", mismatched.join(", ")))
                }
            }
            Invariant::DigestStableAcrossRuns => {
                let stable = outcome.rerun_digest == outcome.digest;
                (
                    stable,
                    format!(
                        "run 1 -> {}, run 2 -> {}",
                        outcome.digest, outcome.rerun_digest
                    ),
                )
            }
            Invariant::NoHonestNodePunished => {
                let punished = summary.punished_honest();
                (
                    punished.is_empty(),
                    format!("honest nodes evicted: {punished:?}"),
                )
            }
            Invariant::AllInjectedLeaderFaultsRecovered => {
                let injected = outcome.injected_leader_faults();
                let evicted: Vec<_> = summary
                    .rounds
                    .iter()
                    .flat_map(|r| r.evicted_leaders.iter().map(|(_, n)| *n))
                    .collect();
                let missed: Vec<_> = injected
                    .iter()
                    .filter(|f| !evicted.contains(&f.node))
                    .map(|f| f.node)
                    .collect();
                (
                    missed.is_empty(),
                    format!(
                        "{} injected leader fault(s), unrecovered: {missed:?}",
                        injected.len()
                    ),
                )
            }
            Invariant::CensoredCrossShardTxsEventuallyApply => {
                let cross_packed: usize = summary
                    .rounds
                    .iter()
                    .map(|r| r.txs_packed_cross_shard)
                    .sum();
                let cross_offered: usize = summary
                    .rounds
                    .iter()
                    .map(|r| r.txs_offered_cross_shard)
                    .sum();
                // "Eventually apply" must mean *all* of them: a censoring
                // leader conceals only its own committee's lists, so any
                // weaker check would be satisfied by the other committees'
                // unaffected traffic and the Lemma 6 gate would be vacuous.
                (
                    cross_packed == cross_offered,
                    format!("{cross_packed} of {cross_offered} offered cross-shard txs applied"),
                )
            }
            Invariant::BlocksEveryRound => {
                let produced = summary.blocks_produced();
                (
                    produced == summary.num_rounds(),
                    format!("{produced} blocks over {} rounds", summary.num_rounds()),
                )
            }
            Invariant::MinBlocksProduced(min) => {
                let produced = summary.blocks_produced();
                (
                    produced >= min,
                    format!("{produced} blocks (need >= {min})"),
                )
            }
            Invariant::MinMeanAcceptanceRate(min) => {
                let rate = summary.mean_acceptance_rate();
                (
                    rate >= min,
                    format!("mean acceptance {rate:.4} (need >= {min})"),
                )
            }
            Invariant::NoEvictions => {
                let evictions = summary.total_evictions();
                (evictions == 0, format!("{evictions} evictions"))
            }
            Invariant::MinEvictions(min) => {
                let evictions = summary.total_evictions();
                (
                    evictions >= min,
                    format!("{evictions} evictions (need >= {min})"),
                )
            }
            Invariant::MinCensorshipReports(min) => {
                let reports = summary.total_censorship_reports();
                (
                    reports >= min,
                    format!("{reports} censorship reports (need >= {min})"),
                )
            }
            Invariant::MinWitnesses(min) => {
                let witnesses = summary.total_witnesses();
                (
                    witnesses >= min,
                    format!("{witnesses} witnesses (need >= {min})"),
                )
            }
            Invariant::PackedWithinOfferedValid => {
                let violating: Vec<u64> = summary
                    .rounds
                    .iter()
                    .filter(|r| r.txs_packed > r.txs_offered_valid)
                    .map(|r| r.round)
                    .collect();
                (
                    violating.is_empty(),
                    format!("rounds packing beyond offered-valid: {violating:?}"),
                )
            }
            Invariant::MaliciousNeverOutearnHonest => {
                let best_honest = outcome.best_honest_reputation();
                let best_malicious = outcome.best_malicious_reputation();
                (
                    outcome.malicious_count == 0 || best_malicious <= best_honest + 1e-9,
                    format!(
                        "best malicious reputation {best_malicious:.4} vs best honest {best_honest:.4}"
                    ),
                )
            }
            Invariant::AdversaryBoundRespected => {
                let bound = AdversaryConfig::max_corrupted(outcome.total_nodes);
                (
                    outcome.malicious_count <= bound,
                    format!(
                        "{} of {} nodes malicious (paper bound t <= {bound})",
                        outcome.malicious_count, outcome.total_nodes
                    ),
                )
            }
            Invariant::FailureProbabilityBelow(bound) => {
                let cfg = &outcome.scenario.config;
                let p = cycledger_round_failure_exact(
                    outcome.total_nodes as u64,
                    outcome.malicious_count as u64,
                    cfg.committees as u64,
                    cfg.committee_size as u64,
                    cfg.partial_set_size as u32,
                );
                (
                    p <= bound,
                    format!("exact per-round failure probability {p:.3e} (need <= {bound:.3e})"),
                )
            }
            Invariant::MinQuorumTimeouts(min) => {
                let fired = summary.total_quorum_timeouts();
                (
                    fired >= min,
                    format!("{fired} quorum timeout(s) fired (need >= {min})"),
                )
            }
            Invariant::NoQuorumTimeouts => {
                let fired = summary.total_quorum_timeouts();
                (fired == 0, format!("{fired} quorum timeout(s) fired"))
            }
            Invariant::MinNetDroppedMessages(min) => {
                let dropped = summary.total_net_dropped_messages();
                (
                    dropped >= min,
                    format!("{dropped} envelope(s) dropped by the fault plan (need >= {min})"),
                )
            }
            Invariant::BlocksFromRound(from) => {
                let missing: Vec<u64> = summary
                    .rounds
                    .iter()
                    .filter(|r| r.round >= from && !r.block_produced)
                    .map(|r| r.round)
                    .collect();
                (
                    missing.is_empty(),
                    format!("rounds >= {from} without a block: {missing:?}"),
                )
            }
            Invariant::MinAcceptanceFromRound(from, min) => {
                let tail: Vec<f64> = summary
                    .rounds
                    .iter()
                    .filter(|r| r.round >= from)
                    .map(|r| r.acceptance_rate())
                    .collect();
                if tail.is_empty() {
                    (false, format!("no rounds at or after round {from}"))
                } else {
                    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
                    (
                        mean >= min,
                        format!("mean acceptance {mean:.4} over rounds >= {from} (need >= {min})"),
                    )
                }
            }
            Invariant::NoDoubleCommit => {
                let dupes = outcome.duplicate_packed_txs;
                (
                    dupes == 0,
                    format!("{dupes} transaction(s) committed more than once"),
                )
            }
            Invariant::MinEpochTransitions(min) => {
                let transitions = summary.total_epoch_transitions();
                (
                    transitions >= min,
                    format!("{transitions} epoch transition(s) (need >= {min})"),
                )
            }
            Invariant::NoSyncingVotes => {
                let votes = summary.total_syncing_votes();
                let abstentions = summary.total_syncing_abstentions();
                (
                    votes == 0,
                    format!("{votes} vote(s) received from Syncing members ({abstentions} abstention(s))"),
                )
            }
            Invariant::MinSynced(min) => {
                let synced = summary.total_synced();
                (
                    synced >= min,
                    format!("{synced} member(s) completed state sync (need >= {min})"),
                )
            }
            Invariant::MinSyncTimeouts(min) => {
                let timeouts = summary.total_sync_timeouts();
                (
                    timeouts >= min,
                    format!("{timeouts} state-sync timeout(s) (need >= {min})"),
                )
            }
            Invariant::MaxP99Latency(max_delta) => match &outcome.traffic {
                None => (false, "scenario has no open-loop traffic".into()),
                Some(traffic) => {
                    let p99 = traffic.p99_delta();
                    (
                        p99 <= max_delta,
                        format!(
                            "p99 confirm latency {p99:.2}Δ = {} µs over {} sample(s) \
                             (need <= {max_delta}Δ)",
                            traffic.p99_us, traffic.samples
                        ),
                    )
                }
            },
            Invariant::MinSustainedTps(min_tps) => match &outcome.traffic {
                None => (false, "scenario has no open-loop traffic".into()),
                Some(traffic) => {
                    let tps = traffic.sustained_tps();
                    (
                        tps >= min_tps,
                        format!(
                            "sustained {tps:.2} tps ({} confirmed over {} µs of virtual \
                             time; need >= {min_tps} tps)",
                            traffic.confirmed, traffic.virtual_elapsed_us
                        ),
                    )
                }
            },
            Invariant::StateRootsEveryRound => {
                let shards = outcome.scenario.config.committees;
                let missing: Vec<u64> = summary
                    .rounds
                    .iter()
                    .filter(|r| r.state_roots.len() != shards)
                    .map(|r| r.round)
                    .collect();
                (
                    missing.is_empty(),
                    format!(
                        "{} round(s) each publishing {shards} shard root(s); \
                         rounds missing roots: {missing:?}",
                        summary.rounds.len()
                    ),
                )
            }
            Invariant::LightClientProofsVerify(min) => match &outcome.proof_audit {
                None => (
                    false,
                    "no proof audit was collected (is the smt backend on?)".into(),
                ),
                Some(audit) => {
                    let failed = (audit.inclusion_checked - audit.inclusion_verified)
                        + (audit.exclusion_checked - audit.exclusion_verified);
                    (
                        failed == 0
                            && audit.root_mismatches == 0
                            && audit.inclusion_verified >= min
                            && audit.exclusion_verified >= 1,
                        format!(
                            "{}/{} inclusion and {}/{} exclusion proof(s) verified \
                             against the final state roots, {} root mismatch(es) \
                             (need >= {min} inclusion)",
                            audit.inclusion_verified,
                            audit.inclusion_checked,
                            audit.exclusion_verified,
                            audit.exclusion_checked,
                            audit.root_mismatches
                        ),
                    )
                }
            },
            Invariant::PipelineComplete => {
                let bad_round = outcome
                    .phase_trace
                    .iter()
                    .position(|phases| phases.as_slice() != STANDARD_PHASES);
                match bad_round {
                    None => (
                        true,
                        format!(
                            "{} rounds x {} standard phases in order",
                            outcome.phase_trace.len(),
                            STANDARD_PHASES.len()
                        ),
                    ),
                    Some(r) => (
                        false,
                        format!("round {r} ran phases {:?}", outcome.phase_trace[r]),
                    ),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip() {
        let all = [
            Invariant::DigestMatchesAcrossWorkerCounts,
            Invariant::DigestStableAcrossRuns,
            Invariant::NoHonestNodePunished,
            Invariant::AllInjectedLeaderFaultsRecovered,
            Invariant::CensoredCrossShardTxsEventuallyApply,
            Invariant::BlocksEveryRound,
            Invariant::MinBlocksProduced(3),
            Invariant::MinMeanAcceptanceRate(0.95),
            Invariant::NoEvictions,
            Invariant::MinEvictions(2),
            Invariant::MinCensorshipReports(1),
            Invariant::MinWitnesses(4),
            Invariant::PackedWithinOfferedValid,
            Invariant::MaliciousNeverOutearnHonest,
            Invariant::AdversaryBoundRespected,
            Invariant::FailureProbabilityBelow(0.25),
            Invariant::PipelineComplete,
            Invariant::MinQuorumTimeouts(2),
            Invariant::NoQuorumTimeouts,
            Invariant::MinNetDroppedMessages(10),
            Invariant::BlocksFromRound(2),
            Invariant::MinAcceptanceFromRound(2, 0.9),
            Invariant::NoDoubleCommit,
            Invariant::MinEpochTransitions(3),
            Invariant::NoSyncingVotes,
            Invariant::MinSynced(4),
            Invariant::MinSyncTimeouts(1),
            Invariant::MaxP99Latency(24.0),
            Invariant::MinSustainedTps(18.5),
            Invariant::StateRootsEveryRound,
            Invariant::LightClientProofsVerify(8),
        ];
        for inv in all {
            assert_eq!(Invariant::from_spec(&inv.to_spec()), Ok(inv));
        }
        assert!(Invariant::from_spec("min-blocks").is_err());
        assert!(Invariant::from_spec("min-blocks:x").is_err());
        assert!(Invariant::from_spec("no-such-claim").is_err());
    }
}
