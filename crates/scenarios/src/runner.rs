//! Executes scenarios: single runs, worker-matrix cross-checks, and the
//! parallel matrix runner on the protocol's [`ShardExecutor`].

use cycledger_crypto::sha256::sha256;
use cycledger_crypto::{verify_proof, ProofTerminal};
use cycledger_ledger::smt::key_digest;
use cycledger_ledger::{OutPoint, StateBackend};
use cycledger_net::faults::{CrashStop, FaultPlan, Partition, TargetedDelay, PPM};
use cycledger_net::time::{SimDuration, SimTime};
use cycledger_net::topology::NodeId;
use cycledger_protocol::engine::{RoundContext, RoundObserver, ShardExecutor};
use cycledger_protocol::report::SimulationSummary;
use cycledger_protocol::simulation::Simulation;

use crate::invariant::InvariantResult;
use crate::outcome::{NodeSnapshot, ProofAudit, ResolvedFault, ScenarioOutcome};
use crate::spec::{FaultTarget, NetFaultKind, Scenario};

/// Outpoints sampled per shard for the light-client proof audit (first in
/// sorted-key order, so the sample is deterministic).
const PROOF_SAMPLES_PER_SHARD: usize = 8;

/// A scenario together with its checked invariants.
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    /// Everything the run measured.
    pub outcome: ScenarioOutcome,
    /// One result per declared invariant, in declaration order.
    pub invariants: Vec<InvariantResult>,
}

impl ScenarioRun {
    /// True when every invariant held.
    pub fn passed(&self) -> bool {
        self.invariants.iter().all(|r| r.passed)
    }

    /// The invariants that failed.
    pub fn violations(&self) -> Vec<&InvariantResult> {
        self.invariants.iter().filter(|r| !r.passed).collect()
    }
}

/// Collects the phase names each round executed, through the engine's
/// [`RoundObserver`] hooks.
#[derive(Default)]
struct PhaseTraceObserver {
    rounds: Vec<Vec<&'static str>>,
}

impl PhaseTraceObserver {
    fn begin_round(&mut self) {
        self.rounds.push(Vec::new());
    }
}

impl RoundObserver for PhaseTraceObserver {
    fn on_phase_end(&mut self, phase: &'static str, _ctx: &RoundContext<'_>) {
        self.rounds
            .last_mut()
            .expect("begin_round precedes every pipeline run")
            .push(phase);
    }
}

/// What one simulation pass produces (shared by the baseline and the
/// cross-check passes).
struct SimPass {
    summary: SimulationSummary,
    digest: String,
    injected: Vec<ResolvedFault>,
    nodes: Vec<NodeSnapshot>,
    malicious_count: usize,
    total_nodes: usize,
    chain_height: usize,
    phase_trace: Vec<Vec<&'static str>>,
    duplicate_packed_txs: usize,
    traffic: Option<cycledger_protocol::traffic::TrafficSnapshot>,
    proof_audit: Option<ProofAudit>,
}

fn resolve_targets(
    sim: &Simulation,
    target: FaultTarget,
    scenario: &Scenario,
) -> Result<Vec<NodeId>, String> {
    let assignment = sim.assignment();
    Ok(match target {
        FaultTarget::Leader(k) => vec![assignment.committees[k].leader],
        FaultTarget::PartialSetMember { committee, index } => {
            let partial = &assignment.committees[committee].partial_set;
            match partial.get(index) {
                Some(&node) => vec![node],
                None => {
                    return Err(format!(
                        "scenario {:?}: partial set of committee {committee} has {} members, fault wants index {index}",
                        scenario.name,
                        partial.len()
                    ))
                }
            }
        }
        FaultTarget::Node(id) => {
            if id as usize >= sim.registry().len() {
                return Err(format!(
                    "scenario {:?}: fault targets node {id} of {}",
                    scenario.name,
                    sim.registry().len()
                ));
            }
            vec![NodeId(id)]
        }
        FaultTarget::AllLeaders => assignment.committees.iter().map(|c| c.leader).collect(),
        FaultTarget::AllReferees => assignment.referee.clone(),
    })
}

/// The first `count` common (non-leader, non-partial-set) members of
/// committee `k` under the current assignment.
fn resolve_commons(sim: &Simulation, k: usize, count: usize) -> Vec<NodeId> {
    let committee = &sim.assignment().committees[k];
    committee
        .members
        .iter()
        .copied()
        .filter(|&n| n != committee.leader && !committee.partial_set.contains(&n))
        .take(count)
        .collect()
}

/// Resolves the scenario's net-fault schedule for one round into the
/// concrete [`FaultPlan`] the simulation installs before running it.
/// Positional targets are re-resolved against the round's assignment, so
/// the same spec is reproducible for any seed.
fn resolve_fault_plan(
    sim: &Simulation,
    scenario: &Scenario,
    round: u64,
) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::default();
    for injection in scenario.net_faults.iter().filter(|f| f.active_at(round)) {
        match injection.kind {
            NetFaultKind::IsolateLeader { committee } => {
                plan.partitions.push(Partition {
                    group: vec![sim.assignment().committees[committee].leader],
                    from: SimTime::ZERO,
                    until: None,
                });
            }
            NetFaultKind::IsolateCommons { committee, count } => {
                let group = resolve_commons(sim, committee, count);
                if group.len() < count {
                    return Err(format!(
                        "scenario {:?}: committee {committee} has only {} common members, \
                         isolate-commons wants {count}",
                        scenario.name,
                        group.len()
                    ));
                }
                plan.partitions.push(Partition {
                    group,
                    from: SimTime::ZERO,
                    until: None,
                });
            }
            NetFaultKind::Delay { target, micros } => {
                for node in resolve_targets(sim, target, scenario)? {
                    plan.delays.push(TargetedDelay {
                        node,
                        extra: SimDuration::from_micros(micros),
                    });
                }
            }
            NetFaultKind::Loss { ppm } => {
                plan.drop_ppm = plan.drop_ppm.saturating_add(ppm).min(PPM);
            }
            NetFaultKind::CrashStop { target } => {
                for node in resolve_targets(sim, target, scenario)? {
                    plan.crashes.push(CrashStop {
                        member: node,
                        at: SimTime::ZERO,
                        restart_at: None,
                    });
                }
            }
            NetFaultKind::IsolateJoiners => {
                // Every id at or above the initial registry size — including
                // joiners that will only be admitted at this round's closing
                // boundary, which is exactly why this cannot be expressed as
                // a `node:` target (those ids fail resolution until they
                // exist). A partition accepts arbitrary ids, so the group
                // covers the maximum possible joiner population up front.
                let initial = scenario.config.total_nodes() as u32;
                let epochs = match scenario.config.epoch_length {
                    0 => 0,
                    len => scenario.rounds as u64 / len,
                };
                let max_joiners = scenario.config.joins_per_epoch as u64 * epochs;
                plan.partitions.push(Partition {
                    group: (0..max_joiners as u32)
                        .map(|k| NodeId(initial + k))
                        .collect(),
                    from: SimTime::ZERO,
                    until: None,
                });
            }
        }
    }
    Ok(plan)
}

/// Counts transactions that appear in more than one block of the chain
/// (the [`crate::invariant::Invariant::NoDoubleCommit`] safety measurement).
fn count_duplicate_packed(sim: &Simulation) -> usize {
    let mut seen = std::collections::HashSet::new();
    let mut duplicates = 0;
    for height in 0..sim.chain().height() as u64 {
        if let Some(block) = sim.chain().block(height) {
            for tx in &block.transactions {
                if !seen.insert(tx.id()) {
                    duplicates += 1;
                }
            }
        }
    }
    duplicates
}

/// Samples light-client proofs against the final round's published state
/// roots: per shard, inclusion proofs for the first
/// [`PROOF_SAMPLES_PER_SHARD`] outpoints in sorted-key order plus one
/// exclusion proof for a never-credited outpoint, each verified with the
/// crypto crate's standalone [`verify_proof`] — exactly what a light client
/// holding nothing but the root would run.
fn audit_state_proofs(sim: &mut Simulation, summary: &SimulationSummary) -> ProofAudit {
    let mut audit = ProofAudit::default();
    let reported: Vec<_> = summary
        .rounds
        .last()
        .map(|r| r.state_roots.clone())
        .unwrap_or_default();
    for (shard, set) in sim.utxo_sets().iter().enumerate() {
        let Some(&root) = reported.get(shard) else {
            audit.root_mismatches += 1;
            continue;
        };
        if set.state_root() != Some(root) {
            audit.root_mismatches += 1;
            continue;
        }
        for outpoint in set.sorted_outpoints().iter().take(PROOF_SAMPLES_PER_SHARD) {
            audit.inclusion_checked += 1;
            let verified = set.prove(outpoint).is_some_and(|proof| {
                matches!(proof.terminal, ProofTerminal::Included { .. })
                    && verify_proof(&root, &key_digest(outpoint), &proof).is_ok()
            });
            audit.inclusion_verified += usize::from(verified);
        }
        let absent = OutPoint {
            tx_id: sha256(format!("cycledger/scenario-absent/{shard}").as_bytes()),
            index: 0,
        };
        audit.exclusion_checked += 1;
        let verified = set.prove(&absent).is_some_and(|proof| {
            !matches!(proof.terminal, ProofTerminal::Included { .. })
                && verify_proof(&root, &key_digest(&absent), &proof).is_ok()
        });
        audit.exclusion_verified += usize::from(verified);
    }
    audit
}

/// Runs one simulation pass of a scenario at a fixed worker count.
fn run_pass(scenario: &Scenario, worker_threads: usize) -> Result<SimPass, String> {
    let mut config = scenario.config;
    config.worker_threads = worker_threads;
    let mut sim = Simulation::new(config)?;
    let mut observer = PhaseTraceObserver::default();
    let mut injected = Vec::new();
    for round in 0..scenario.rounds as u64 {
        for fault in scenario.faults.iter().filter(|f| f.round == round) {
            for node in resolve_targets(&sim, fault.target, scenario)? {
                sim.registry_mut().set_behavior(node, fault.behavior);
                injected.push(ResolvedFault {
                    round,
                    node,
                    behavior: fault.behavior,
                });
            }
        }
        if !scenario.net_faults.is_empty() {
            sim.set_fault_plan(resolve_fault_plan(&sim, scenario, round)?);
        }
        observer.begin_round();
        sim.run_round_observed(&mut observer);
    }
    let summary = SimulationSummary {
        rounds: sim.reports().to_vec(),
    };
    let digest = summary.canonical_digest().to_hex();
    let proof_audit = (sim.config().state_backend == StateBackend::Smt)
        .then(|| audit_state_proofs(&mut sim, &summary));
    let nodes: Vec<NodeSnapshot> = sim
        .registry()
        .iter()
        .map(|n| NodeSnapshot {
            id: n.id,
            honest: n.is_honest(),
            reputation: sim.reputation().get(n.id),
        })
        .collect();
    Ok(SimPass {
        digest,
        injected,
        malicious_count: sim.registry().malicious_count(),
        total_nodes: sim.registry().len(),
        chain_height: sim.chain().height(),
        phase_trace: observer.rounds,
        duplicate_packed_txs: count_duplicate_packed(&sim),
        traffic: sim.traffic(),
        proof_audit,
        nodes,
        summary,
    })
}

/// Runs a scenario across its whole worker matrix (plus one repeat of the
/// baseline for run-to-run stability) and checks every declared invariant.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioRun, String> {
    scenario.validate()?;
    let baseline_workers = scenario.workers[0];
    let baseline = run_pass(scenario, baseline_workers)?;
    let mut worker_digests = vec![(baseline_workers, baseline.digest.clone())];
    for &workers in &scenario.workers[1..] {
        let pass = run_pass(scenario, workers)?;
        worker_digests.push((workers, pass.digest));
    }
    let rerun = run_pass(scenario, baseline_workers)?;

    let outcome = ScenarioOutcome {
        scenario: scenario.clone(),
        digest: baseline.digest,
        worker_digests,
        rerun_digest: rerun.digest,
        injected: baseline.injected,
        nodes: baseline.nodes,
        malicious_count: baseline.malicious_count,
        total_nodes: baseline.total_nodes,
        chain_height: baseline.chain_height,
        phase_trace: baseline.phase_trace,
        duplicate_packed_txs: baseline.duplicate_packed_txs,
        traffic: baseline.traffic,
        proof_audit: baseline.proof_audit,
        summary: baseline.summary,
    };
    let invariants = scenario
        .invariants
        .iter()
        .map(|inv| inv.check(&outcome))
        .collect();
    Ok(ScenarioRun {
        outcome,
        invariants,
    })
}

/// Runs a whole matrix of scenarios in parallel on a [`ShardExecutor`]
/// (`jobs == 0` sizes the pool from the machine). Results come back in
/// scenario order; a scenario that fails to even run is reported as an
/// `Err` in its slot.
pub fn run_matrix(scenarios: &[Scenario], jobs: usize) -> Vec<Result<ScenarioRun, String>> {
    let executor = ShardExecutor::new(jobs);
    let tasks: Vec<_> = scenarios
        .iter()
        .map(|scenario| move || run_scenario(scenario))
        .collect();
    executor.execute(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant::Invariant;
    use crate::registry;
    use cycledger_protocol::adversary::Behavior;
    use cycledger_protocol::config::ProtocolConfig;

    fn tiny_scenario() -> Scenario {
        let config = ProtocolConfig {
            committees: 2,
            committee_size: 8,
            partial_set_size: 2,
            referee_size: 5,
            txs_per_round: 30,
            accounts_per_shard: 24,
            cross_shard_ratio: 0.2,
            invalid_ratio: 0.0,
            pow_difficulty: 2,
            verify_signatures: false,
            seed: 11,
            ..ProtocolConfig::default()
        };
        let mut scenario = Scenario::new("tiny", config);
        scenario.rounds = 2;
        scenario.workers = vec![1, 2];
        scenario.invariants = vec![
            Invariant::BlocksEveryRound,
            Invariant::DigestMatchesAcrossWorkerCounts,
            Invariant::DigestStableAcrossRuns,
            Invariant::PipelineComplete,
            Invariant::NoHonestNodePunished,
        ];
        scenario
    }

    #[test]
    fn tiny_scenario_passes_and_traces_phases() {
        let run = run_scenario(&tiny_scenario()).expect("runs");
        assert!(run.passed(), "violations: {:?}", run.violations());
        assert_eq!(run.outcome.phase_trace.len(), 2);
        assert_eq!(
            run.outcome.phase_trace[0],
            crate::invariant::STANDARD_PHASES.to_vec()
        );
        assert_eq!(run.outcome.chain_height, 2);
    }

    #[test]
    fn injected_leader_fault_is_resolved_and_recovered() {
        let mut scenario = tiny_scenario();
        scenario.name = "tiny-silent".into();
        scenario.faults.push(crate::spec::FaultInjection {
            round: 0,
            target: FaultTarget::Leader(0),
            behavior: Behavior::SilentLeader,
        });
        scenario.invariants = vec![
            Invariant::AllInjectedLeaderFaultsRecovered,
            Invariant::MinEvictions(1),
            Invariant::NoHonestNodePunished,
        ];
        let run = run_scenario(&scenario).expect("runs");
        assert_eq!(run.outcome.injected.len(), 1);
        assert!(run.passed(), "violations: {:?}", run.violations());
    }

    #[test]
    fn a_failing_invariant_is_reported_not_panicked() {
        let mut scenario = tiny_scenario();
        scenario.name = "tiny-impossible".into();
        // An honest network produces no evictions, so this must fail.
        scenario.invariants = vec![Invariant::MinEvictions(5)];
        let run = run_scenario(&scenario).expect("runs");
        assert!(!run.passed());
        assert_eq!(run.violations().len(), 1);
        assert!(run.violations()[0].detail.contains("0 evictions"));
    }

    #[test]
    fn matrix_runner_preserves_scenario_order() {
        let scenarios = vec![tiny_scenario(), {
            let mut s = tiny_scenario();
            s.name = "tiny-2".into();
            s.config.seed = 12;
            s
        }];
        let results = run_matrix(&scenarios, 2);
        assert_eq!(results.len(), 2);
        for (scenario, result) in scenarios.iter().zip(&results) {
            let run = result.as_ref().expect("runs");
            assert_eq!(run.outcome.scenario.name, scenario.name);
        }
        // Different seeds, different digests.
        let a = results[0].as_ref().unwrap().outcome.digest.clone();
        let b = results[1].as_ref().unwrap().outcome.digest.clone();
        assert_ne!(a, b);
    }

    #[test]
    fn builtins_all_validate() {
        for scenario in registry::builtin_scenarios() {
            assert_eq!(scenario.validate(), Ok(()), "{}", scenario.name);
        }
    }

    /// Every builtin scenario must produce a byte-identical canonical digest
    /// with round pipelining enabled. Runs at two workers so the deferred
    /// block-apply actually overlaps the next round's early phases — at one
    /// worker the executor runs inline and the pipelined schedule
    /// degenerates to the sequential one, which would prove nothing.
    #[test]
    fn pipelined_engine_matches_sequential_for_every_builtin() {
        for scenario in registry::builtin_scenarios() {
            // Long soaks are release-mode only; the CI latency gate covers
            // them through `scenario-runner`.
            if scenario.rounds > 1000 {
                continue;
            }
            let sequential = run_pass(&scenario, 2)
                .unwrap_or_else(|e| panic!("{}: sequential pass failed: {e}", scenario.name));
            let mut flipped = scenario.clone();
            flipped.config.pipelined = true;
            let pipelined = run_pass(&flipped, 2)
                .unwrap_or_else(|e| panic!("{}: pipelined pass failed: {e}", scenario.name));
            assert_eq!(
                pipelined.digest, sequential.digest,
                "{}: pipelined engine drifted from the sequential digest",
                scenario.name
            );
        }
    }
}
