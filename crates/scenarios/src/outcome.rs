//! What one scenario run produced: everything the invariant checkers and the
//! JSON report read.

use cycledger_net::topology::NodeId;
use cycledger_protocol::adversary::Behavior;
use cycledger_protocol::report::SimulationSummary;
use cycledger_protocol::traffic::TrafficSnapshot;

use crate::spec::Scenario;

/// Ground truth about one node after the run (behaviour reflects any
/// injected faults).
#[derive(Clone, Debug)]
pub struct NodeSnapshot {
    /// The node.
    pub id: NodeId,
    /// Whether the node ended the run honest.
    pub honest: bool,
    /// Final reputation.
    pub reputation: f64,
}

/// A fault injection with its target resolved to a concrete node.
#[derive(Clone, Copy, Debug)]
pub struct ResolvedFault {
    /// Round before which the flip was applied.
    pub round: u64,
    /// The node that was flipped.
    pub node: NodeId,
    /// The behaviour assigned.
    pub behavior: Behavior,
}

/// Light-client proof audit of one run: after the final round, the runner
/// samples outpoints from every shard's UTXO set, asks the store for
/// inclusion proofs (plus one exclusion proof per shard for a never-credited
/// outpoint), and verifies each against the state roots the final round's
/// report published. Collected only under the smt backend — the map backend
/// publishes no roots to verify against.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProofAudit {
    /// Inclusion proofs sampled and checked.
    pub inclusion_checked: usize,
    /// Inclusion proofs that verified against the reported root.
    pub inclusion_verified: usize,
    /// Exclusion proofs sampled and checked (one per shard).
    pub exclusion_checked: usize,
    /// Exclusion proofs that verified against the reported root.
    pub exclusion_verified: usize,
    /// Shards whose reported final root differs from the live set's root
    /// (must be 0: the report is a commitment to the state it ran on).
    pub root_mismatches: usize,
}

/// Everything measured while running one scenario across its worker matrix.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Per-round reports of the baseline run (first worker count).
    pub summary: SimulationSummary,
    /// Canonical digest of the baseline summary (hex).
    pub digest: String,
    /// `(worker_count, digest)` for every entry of the worker matrix.
    pub worker_digests: Vec<(usize, String)>,
    /// Digest of a second, fresh baseline run (run-to-run stability).
    pub rerun_digest: String,
    /// Every fault injection, resolved to concrete nodes.
    pub injected: Vec<ResolvedFault>,
    /// Final per-node ground truth (sorted by node id).
    pub nodes: Vec<NodeSnapshot>,
    /// Number of malicious nodes at the end of the run.
    pub malicious_count: usize,
    /// Total simulated nodes.
    pub total_nodes: usize,
    /// Final chain height of the baseline run.
    pub chain_height: usize,
    /// Phase names each round executed, in execution order (from the
    /// [`cycledger_protocol::engine::RoundObserver`] hooks).
    pub phase_trace: Vec<Vec<&'static str>>,
    /// Transactions that appear in more than one block of the baseline
    /// run's chain (safety: must be 0; see
    /// [`crate::invariant::Invariant::NoDoubleCommit`]).
    pub duplicate_packed_txs: usize,
    /// Aggregate open-loop traffic statistics of the baseline run
    /// (confirm-latency percentiles, sustained throughput, censor counts);
    /// `None` for closed-loop scenarios.
    pub traffic: Option<TrafficSnapshot>,
    /// Sampled light-client proof checks against the final round's published
    /// state roots; `None` under the map backend (no roots to verify).
    pub proof_audit: Option<ProofAudit>,
}

impl ScenarioOutcome {
    /// Nodes that were flipped to a leader fault by an injection (the
    /// recovery-completeness invariant checks each one was evicted).
    pub fn injected_leader_faults(&self) -> Vec<ResolvedFault> {
        self.injected
            .iter()
            .copied()
            .filter(|f| f.behavior.is_leader_fault())
            .collect()
    }

    /// Highest final reputation among honest nodes.
    pub fn best_honest_reputation(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.honest)
            .map(|n| n.reputation)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Highest final reputation among malicious nodes (−∞ when none).
    pub fn best_malicious_reputation(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| !n.honest)
            .map(|n| n.reputation)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}
