//! Integration gates over the built-in scenario matrix:
//!
//! * every built-in scenario is deterministic across 1/2/8 executor workers
//!   *and* across two consecutive runs (canonical-digest equality),
//! * every built-in scenario passes all of its declared invariants,
//! * the rendered JSON reports match the golden files committed under
//!   `scenarios/golden/`,
//! * the TOML schema round-trips the whole registry losslessly.

use std::path::PathBuf;

use cycledger_scenarios::registry::builtin_scenarios;
use cycledger_scenarios::report::render_report;
use cycledger_scenarios::runner::{run_matrix, run_scenario};
use cycledger_scenarios::toml_cfg::{scenarios_from_toml, scenarios_to_toml};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/golden")
}

/// One pass over the whole registry: run_scenario executes every worker
/// count in the scenario's matrix plus a fresh rerun of the baseline, so a
/// single matrix run yields all the digests the differential claims need.
/// Long-running scenarios (the 10k-round soak) are exempt from the
/// debug-mode matrix; the release-mode CI latency gate runs them via
/// `scenario-runner --scenario NAME` against the same golden files.
fn debug_matrix() -> Vec<cycledger_scenarios::spec::Scenario> {
    builtin_scenarios()
        .into_iter()
        .filter(|s| s.rounds <= 1000)
        .collect()
}

#[test]
fn builtins_are_deterministic_invariant_clean_and_match_goldens() {
    let scenarios = debug_matrix();
    let results = run_matrix(&scenarios, 0);
    for (scenario, result) in scenarios.iter().zip(results) {
        let run = result.unwrap_or_else(|e| panic!("{} failed to run: {e}", scenario.name));
        let outcome = &run.outcome;

        // Differential: 1/2/8 workers (every builtin declares that matrix).
        assert_eq!(
            scenario.workers,
            vec![1, 2, 8],
            "{}: builtin worker matrix changed",
            scenario.name
        );
        for (workers, digest) in &outcome.worker_digests {
            assert_eq!(
                digest, &outcome.digest,
                "{}: digest differs at {workers} workers",
                scenario.name
            );
        }
        // Differential: two consecutive runs.
        assert_eq!(
            outcome.rerun_digest, outcome.digest,
            "{}: digest differs across consecutive runs",
            scenario.name
        );

        // Every declared invariant holds.
        assert!(
            run.passed(),
            "{}: invariant violations: {:#?}",
            scenario.name,
            run.violations()
        );

        // The canonical report matches the committed golden file.
        let golden_path = golden_dir().join(format!("{}.json", scenario.name));
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "{}: missing golden {} ({e}); run `scenario-runner --bless`",
                scenario.name,
                golden_path.display()
            )
        });
        assert_eq!(
            render_report(&run),
            golden,
            "{}: report drifted from its golden file; inspect the diff and \
             re-bless with `scenario-runner --bless` if intended",
            scenario.name
        );
    }
}

/// The pipelined round engine must reproduce the committed goldens
/// byte-for-byte: `pipelined` is a pure scheduling flag and is never
/// rendered into reports. The per-scenario digest sweep over the whole
/// registry lives in the runner's unit tests; here a representative slice
/// — synchronous honest, mixed adversary, and message-driven with
/// partitions — goes end-to-end through `run_scenario` (full worker
/// matrix plus rerun) and the report renderer against the golden files.
#[test]
fn pipelined_engine_reproduces_goldens_byte_identically() {
    let picks = [
        "honest-baseline",
        "mixed-adversary",
        "partition-minority",
        "traffic-baseline",
    ];
    let mut matched = 0;
    for mut scenario in builtin_scenarios() {
        if !picks.contains(&scenario.name.as_str()) {
            continue;
        }
        matched += 1;
        scenario.config.pipelined = true;
        let run = run_scenario(&scenario)
            .unwrap_or_else(|e| panic!("{}: pipelined run failed: {e}", scenario.name));
        assert!(
            run.passed(),
            "{}: invariant violations under pipelining: {:#?}",
            scenario.name,
            run.violations()
        );
        let golden_path = golden_dir().join(format!("{}.json", scenario.name));
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("{}: missing golden ({e})", scenario.name));
        assert_eq!(
            render_report(&run),
            golden,
            "{}: pipelined report drifted from the committed golden",
            scenario.name
        );
    }
    assert_eq!(matched, picks.len(), "a picked scenario was renamed");
}

#[test]
fn no_stale_golden_files() {
    let names: Vec<String> = builtin_scenarios().into_iter().map(|s| s.name).collect();
    for entry in std::fs::read_dir(golden_dir()).expect("golden dir exists") {
        let path = entry.expect("dir entry").path();
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        assert!(
            names.contains(&stem),
            "stale golden file {} has no matching builtin scenario",
            path.display()
        );
    }
}

#[test]
fn toml_round_trips_the_whole_registry() {
    let scenarios = builtin_scenarios();
    let serialized = scenarios_to_toml(&scenarios);
    let parsed = scenarios_from_toml(&serialized).expect("serialized registry parses");
    assert_eq!(parsed.len(), scenarios.len());
    let reserialized = scenarios_to_toml(&parsed);
    assert_eq!(
        serialized, reserialized,
        "TOML round-trip must be lossless over the whole registry"
    );
    // Spot-check structural fidelity beyond string equality.
    for (a, b) in scenarios.iter().zip(&parsed) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.smoke, b.smoke);
        assert_eq!(a.workers, b.workers);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.net_faults, b.net_faults);
        assert_eq!(a.invariants, b.invariants);
        assert_eq!(a.config.message_driven, b.config.message_driven);
        assert_eq!(a.config.seed, b.config.seed);
        assert_eq!(a.config.committees, b.config.committees);
        assert_eq!(a.config.adversary.mix, b.config.adversary.mix);
        assert_eq!(
            a.config.adversary.malicious_fraction,
            b.config.adversary.malicious_fraction
        );
        assert_eq!(a.config.latency.delta, b.config.latency.delta);
    }
}
