#!/usr/bin/env python3
"""CI perf gates for the round-engine data plane, the latency harness, and
the authenticated state layer.

Default mode (no arguments) gates wall-clock round throughput: runs
``gen_bench_round --smoke`` (the tracked configuration: 8x16,
verify_signatures on, pipelined round engine, one worker) and compares the
measured ``rounds_per_sec`` and ``allocations_per_round`` of both emitted
series against their committed entries in ``BENCH_round.json``:

* ``smoke_1_worker``       vs ``verified.one_worker`` -- plain rounds;
* ``smoke_epoch_1_worker`` vs ``verified.one_worker_epoch`` -- the
  epoch-lifecycle variant (``epoch_length=2``, so every second measured
  round pays the full boundary: beacon, churn, state sync, reshuffle),
  gating the epoch-boundary cost.

``--latency`` mode gates the open-loop traffic harness instead: runs
``gen_bench_latency --smoke`` and compares the tracked p99 confirm latency
(at 0.9x capacity) and the saturated throughput against
``BENCH_latency.json``. Both numbers are measured in *virtual* time, so
they are machine-independent -- a drift means the protocol changed, never
the runner. The tolerance still applies because the smoke sweep measures
fewer rounds than the committed full sweep.

``--state`` mode gates the authenticated state layer: runs
``gen_bench_state --smoke`` (flat-map vs sparse-Merkle store, 10^6-entry
UTXO set) and checks the tracked ratios against ``BENCH_state.json``. The
per-transaction hot paths carry *hard caps* -- lookup must stay within 3x
and apply within 4x of the flat map, regardless of what the committed
baseline says -- because those bounds are what make the authenticated
backend deployable on the transaction path. The per-round commit ratio and
the per-round allocation count are regression-gated (20% tolerance vs the
committed values) instead: a Merkle commit pays O(log n) hashes per written
key where a hashmap pays one probe, so no absolute small-constant cap is
physically achievable there (see ``BENCH_state.json``'s description).

``--latency --self-test`` / ``--state --self-test`` run no benchmark at
all: they feed synthetic measurements derived from the committed baseline
through the gate logic and check that regressions past the tolerance (and,
for ``--state``, cap violations) fail while equal-or-better numbers pass.
CI runs this first so a broken gate can never silently wave regressions
through.

The job fails on a regression of more than ``PERF_GATE_TOLERANCE``
(default 20%):

* higher-is-better metrics (``rounds_per_sec``, ``saturated_tps``)
  fail when measured < committed * (1 - tol);
* lower-is-better metrics (``allocations_per_round``, ``p99_us``)
  fail when measured > committed * (1 + tol).

Improvements never fail the gate; re-bless the relevant ``BENCH_*.json``
with the matching ``gen_bench_*`` binary when a PR intentionally moves the
numbers (see the ``regeneration`` field in the JSON for the full recipe).

Allocation counts come from the counting global allocator and are exact and
machine-independent; rounds/sec is wall clock, so the tolerance absorbs CI
runner noise. Override with ``PERF_GATE_TOLERANCE=0.35`` etc. if a shared
runner proves noisier than that.
"""

import json
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TOLERANCE = float(os.environ.get("PERF_GATE_TOLERANCE", "0.20"))


def run_bench(binary: str) -> dict | None:
    cmd = [
        "cargo",
        "run",
        "-q",
        "--release",
        "-p",
        "cycledger-bench",
        "--bin",
        binary,
        "--",
        "--smoke",
    ]
    print("+", " ".join(cmd), flush=True)
    out = subprocess.run(cmd, cwd=REPO_ROOT, capture_output=True, text=True)
    if out.returncode != 0:
        print(out.stdout)
        print(out.stderr, file=sys.stderr)
        print(f"perf gate: {binary} failed", file=sys.stderr)
        return None
    print(out.stdout)
    return json.loads(out.stdout)


def check(
    label: str,
    metric: str,
    reference: float,
    measured: float,
    higher_is_better: bool,
    failures: list,
) -> None:
    if higher_is_better:
        floor = reference * (1.0 - TOLERANCE)
        ok = measured >= floor
        bound = f">= {floor:.3f}"
    else:
        ceiling = reference * (1.0 + TOLERANCE)
        ok = measured <= ceiling
        bound = f"<= {ceiling:.3f}"
    verdict = "ok" if ok else "REGRESSION"
    print(
        f"{label}.{metric}: measured {measured:.3f} vs committed {reference:.3f} "
        f"(gate {bound}) ... {verdict}"
    )
    if not ok:
        failures.append(f"{label}.{metric}")


def verdict(failures: list, baseline: str) -> int:
    if failures:
        print(
            f"perf gate FAILED ({', '.join(failures)} regressed by more than "
            f"{TOLERANCE:.0%} vs {baseline})",
            file=sys.stderr,
        )
        return 1
    print(f"perf gate passed (tolerance {TOLERANCE:.0%})")
    return 0


def round_gate() -> int:
    committed_path = REPO_ROOT / "BENCH_round.json"
    verified = json.loads(committed_path.read_text())["verified"]

    report = run_bench("gen_bench_round")
    if report is None:
        return 1

    failures = []
    for label, committed_key, smoke_key in (
        ("plain", "one_worker", "smoke_1_worker"),
        ("epoch", "one_worker_epoch", "smoke_epoch_1_worker"),
    ):
        committed = verified[committed_key]
        smoke = report[smoke_key]
        check(
            label,
            "rounds_per_sec",
            float(committed["rounds_per_sec"]),
            float(smoke["rounds_per_sec"]),
            higher_is_better=True,
            failures=failures,
        )
        check(
            label,
            "allocations_per_round",
            float(committed["allocations_per_round"]),
            float(smoke["allocations_per_round"]),
            higher_is_better=False,
            failures=failures,
        )
    return verdict(failures, "BENCH_round.json")


def latency_checks(baseline: dict, measured_p99: float, measured_tps: float) -> list:
    """Gates the two tracked latency-harness numbers; returns failures."""
    failures = []
    check(
        "tracked",
        "p99_us",
        float(baseline["tracked"]["p99_us"]),
        measured_p99,
        higher_is_better=False,
        failures=failures,
    )
    check(
        "sweep",
        "saturated_tps",
        float(baseline["saturated_tps"]),
        measured_tps,
        higher_is_better=True,
        failures=failures,
    )
    return failures


def latency_self_test(baseline: dict) -> int:
    """Feeds synthetic regressions and improvements through the gate logic:
    a broken comparator must not be able to wave real regressions through."""
    p99 = float(baseline["tracked"]["p99_us"])
    tps = float(baseline["saturated_tps"])
    worse = 1.0 + TOLERANCE + 0.10
    better = 1.0 - TOLERANCE - 0.10
    cases = (
        # (description, measured_p99, measured_tps, expect_failures)
        ("baseline reproduced exactly", p99, tps, 0),
        (f"p99 up {worse - 1.0:.0%} must fail", p99 * worse, tps, 1),
        (f"throughput down {1.0 - better:.0%} must fail", p99, tps * better, 1),
        ("both regressed must fail twice", p99 * worse, tps * better, 2),
        ("improvements never fail", p99 * better, tps * worse, 0),
    )
    broken = 0
    for description, measured_p99, measured_tps, expected in cases:
        print(f"self-test: {description}")
        got = len(latency_checks(baseline, measured_p99, measured_tps))
        if got != expected:
            print(
                f"self-test FAILED: expected {expected} gate failure(s), got {got}",
                file=sys.stderr,
            )
            broken += 1
    if broken:
        print(f"perf gate self-test FAILED ({broken} case(s))", file=sys.stderr)
        return 1
    print("perf gate self-test passed")
    return 0


def cap_check(label: str, metric: str, cap: float, measured: float, failures: list) -> None:
    """Absolute ceiling, independent of the committed baseline."""
    ok = measured <= cap
    verdict = "ok" if ok else "CAP EXCEEDED"
    print(f"{label}.{metric}: measured {measured:.3f} vs hard cap {cap:.3f} ... {verdict}")
    if not ok:
        failures.append(f"{label}.{metric}")


# Hot-path ratios (SMT over flat map) that must hold on any machine: the
# sparse-Merkle backend answers lookups from its O(1) mirror (~1x measured)
# and an apply is two hashmap writes plus a delta-buffer insert (~3x
# measured), so breaching these caps means a structural regression, not
# runner noise.
STATE_CAPS = (
    ("smt_lookup_over_map_lookup", 3.0),
    ("smt_apply_over_map_apply", 4.0),
)

# Per-round numbers gated against the committed baseline instead: the commit
# ratio has no physically meaningful absolute cap (O(log n) hashes per
# written key vs one probe), and the allocation count is exact but only
# meaningful relative to what the current fold implementation costs.
STATE_REGRESSIONS = (
    "smt_commit_over_map_apply",
    "smt_allocations_per_round",
)


def state_checks(baseline: dict, measured: dict) -> list:
    """Gates the tracked state-layer ratios; returns failures."""
    failures = []
    for metric, cap in STATE_CAPS:
        cap_check("tracked", metric, cap, float(measured[metric]), failures)
    for metric in STATE_REGRESSIONS:
        check(
            "tracked",
            metric,
            float(baseline["tracked"][metric]),
            float(measured[metric]),
            higher_is_better=False,
            failures=failures,
        )
    return failures


def state_self_test(baseline: dict) -> int:
    """Synthetic regressions and cap violations through the state gate."""
    tracked = baseline["tracked"]
    worse = 1.0 + TOLERANCE + 0.10
    better = 1.0 - TOLERANCE - 0.10

    def synthetic(**overrides) -> dict:
        measured = {
            "smt_lookup_over_map_lookup": float(tracked["smt_lookup_over_map_lookup"]),
            "smt_apply_over_map_apply": float(tracked["smt_apply_over_map_apply"]),
            "smt_commit_over_map_apply": float(tracked["smt_commit_over_map_apply"]),
            "smt_allocations_per_round": float(tracked["smt_allocations_per_round"]),
        }
        measured.update(overrides)
        return measured

    commit = float(tracked["smt_commit_over_map_apply"])
    allocs = float(tracked["smt_allocations_per_round"])
    cases = (
        # (description, measured, expect_failures)
        ("baseline reproduced exactly", synthetic(), 0),
        (
            "lookup ratio past the 3x cap must fail",
            synthetic(smt_lookup_over_map_lookup=3.2),
            1,
        ),
        (
            "apply ratio past the 4x cap must fail",
            synthetic(smt_apply_over_map_apply=4.3),
            1,
        ),
        (
            f"commit ratio up {worse - 1.0:.0%} must fail",
            synthetic(smt_commit_over_map_apply=commit * worse),
            1,
        ),
        (
            f"allocations up {worse - 1.0:.0%} must fail",
            synthetic(smt_allocations_per_round=allocs * worse),
            1,
        ),
        (
            "everything regressed must fail four times",
            synthetic(
                smt_lookup_over_map_lookup=3.2,
                smt_apply_over_map_apply=4.3,
                smt_commit_over_map_apply=commit * worse,
                smt_allocations_per_round=allocs * worse,
            ),
            4,
        ),
        (
            "improvements never fail",
            synthetic(
                smt_lookup_over_map_lookup=0.9,
                smt_apply_over_map_apply=1.5,
                smt_commit_over_map_apply=commit * better,
                smt_allocations_per_round=allocs * better,
            ),
            0,
        ),
    )
    broken = 0
    for description, measured, expected in cases:
        print(f"self-test: {description}")
        got = len(state_checks(baseline, measured))
        if got != expected:
            print(
                f"self-test FAILED: expected {expected} gate failure(s), got {got}",
                file=sys.stderr,
            )
            broken += 1
    if broken:
        print(f"perf gate self-test FAILED ({broken} case(s))", file=sys.stderr)
        return 1
    print("perf gate self-test passed")
    return 0


def state_gate(self_test: bool) -> int:
    committed_path = REPO_ROOT / "BENCH_state.json"
    baseline = json.loads(committed_path.read_text())

    if self_test:
        return state_self_test(baseline)

    report = run_bench("gen_bench_state")
    if report is None:
        return 1
    failures = state_checks(baseline, report["tracked"])
    return verdict(failures, "BENCH_state.json")


def latency_gate(self_test: bool) -> int:
    committed_path = REPO_ROOT / "BENCH_latency.json"
    baseline = json.loads(committed_path.read_text())

    if self_test:
        return latency_self_test(baseline)

    report = run_bench("gen_bench_latency")
    if report is None:
        return 1
    failures = latency_checks(
        baseline,
        float(report["tracked"]["p99_us"]),
        float(report["saturated_tps"]),
    )
    return verdict(failures, "BENCH_latency.json")


def main() -> int:
    args = sys.argv[1:]
    latency = "--latency" in args
    state = "--state" in args
    self_test = "--self-test" in args
    unknown = [a for a in args if a not in ("--latency", "--state", "--self-test")]
    if unknown or (latency and state) or (self_test and not (latency or state)):
        print(
            "usage: perf_gate.py [--latency [--self-test] | --state [--self-test]]",
            file=sys.stderr,
        )
        return 2
    if latency:
        return latency_gate(self_test)
    if state:
        return state_gate(self_test)
    return round_gate()


if __name__ == "__main__":
    sys.exit(main())
