#!/usr/bin/env python3
"""CI perf gate for the round-engine data plane.

Runs ``gen_bench_round --smoke`` (the tracked configuration: 8x16,
verify_signatures on, pipelined round engine, one worker) and compares the
measured ``rounds_per_sec`` and ``allocations_per_round`` of both emitted
series against their committed entries in ``BENCH_round.json``:

* ``smoke_1_worker``       vs ``verified.one_worker`` -- plain rounds;
* ``smoke_epoch_1_worker`` vs ``verified.one_worker_epoch`` -- the
  epoch-lifecycle variant (``epoch_length=2``, so every second measured
  round pays the full boundary: beacon, churn, state sync, reshuffle),
  gating the epoch-boundary cost.

The job fails on a regression of more than ``PERF_GATE_TOLERANCE``
(default 20%):

* ``rounds_per_sec``           -- fails when measured < committed * (1 - tol)
* ``allocations_per_round``    -- fails when measured > committed * (1 + tol)

Improvements never fail the gate; re-bless ``BENCH_round.json`` with
``cargo run --release -p cycledger-bench --bin gen_bench_round`` when a PR
intentionally moves the numbers (see the ``regeneration`` field in the
JSON for the full recipe).

Allocation counts come from the counting global allocator and are exact and
machine-independent; rounds/sec is wall clock, so the tolerance absorbs CI
runner noise. Override with ``PERF_GATE_TOLERANCE=0.35`` etc. if a shared
runner proves noisier than that.
"""

import json
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TOLERANCE = float(os.environ.get("PERF_GATE_TOLERANCE", "0.20"))


def main() -> int:
    committed_path = REPO_ROOT / "BENCH_round.json"
    verified = json.loads(committed_path.read_text())["verified"]

    cmd = [
        "cargo",
        "run",
        "-q",
        "--release",
        "-p",
        "cycledger-bench",
        "--bin",
        "gen_bench_round",
        "--",
        "--smoke",
    ]
    print("+", " ".join(cmd), flush=True)
    out = subprocess.run(cmd, cwd=REPO_ROOT, capture_output=True, text=True)
    if out.returncode != 0:
        print(out.stdout)
        print(out.stderr, file=sys.stderr)
        print("perf gate: bench binary failed", file=sys.stderr)
        return 1
    print(out.stdout)
    report = json.loads(out.stdout)

    failures = []

    def check(label: str, committed: dict, smoke: dict, metric: str, higher_is_better: bool) -> None:
        reference = float(committed[metric])
        measured = float(smoke[metric])
        if higher_is_better:
            floor = reference * (1.0 - TOLERANCE)
            ok = measured >= floor
            bound = f">= {floor:.3f}"
        else:
            ceiling = reference * (1.0 + TOLERANCE)
            ok = measured <= ceiling
            bound = f"<= {ceiling:.0f}"
        verdict = "ok" if ok else "REGRESSION"
        print(
            f"{label}.{metric}: measured {measured:.3f} vs committed {reference:.3f} "
            f"(gate {bound}) ... {verdict}"
        )
        if not ok:
            failures.append(f"{label}.{metric}")

    for label, committed_key, smoke_key in (
        ("plain", "one_worker", "smoke_1_worker"),
        ("epoch", "one_worker_epoch", "smoke_epoch_1_worker"),
    ):
        committed = verified[committed_key]
        smoke = report[smoke_key]
        check(label, committed, smoke, "rounds_per_sec", higher_is_better=True)
        check(label, committed, smoke, "allocations_per_round", higher_is_better=False)

    if failures:
        print(
            f"perf gate FAILED ({', '.join(failures)} regressed by more than "
            f"{TOLERANCE:.0%} vs BENCH_round.json)",
            file=sys.stderr,
        )
        return 1
    print(f"perf gate passed (tolerance {TOLERANCE:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
